#include "sax/sax.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <stdexcept>

#include "ts/parallel.h"
#include "ts/znorm.h"

namespace rpm::sax {
namespace {

// Acklam's rational approximation to the inverse normal CDF; relative
// error < 1.15e-9, far below what symbol binning needs.
double InverseNormalCdf(double p) {
  static constexpr std::array<double, 6> a = {
      -3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
      1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr std::array<double, 5> b = {
      -5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
      6.680131188771972e+01, -1.328068155288572e+01};
  static constexpr std::array<double, 6> c = {
      -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
      -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00};
  static constexpr std::array<double, 4> d = {
      7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
      3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("InverseNormalCdf: p must be in (0,1)");
  }
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

const std::vector<double>& GaussianBreakpoints(int alphabet) {
  if (alphabet < kMinAlphabet || alphabet > kMaxAlphabet) {
    throw std::invalid_argument("SAX alphabet size must be in [2, 26], got " +
                                std::to_string(alphabet));
  }
  // One fixed slot per legal alphabet size, initialized once: after the
  // first call for a size, lookups are a lock-free array index (callers
  // like the symbol-binning loops hit this once per word, so a mutex +
  // map here used to show up in profiles).
  static std::array<std::vector<double>, kMaxAlphabet - kMinAlphabet + 1>
      cache;
  static std::array<std::once_flag, kMaxAlphabet - kMinAlphabet + 1> once;
  const auto slot = static_cast<std::size_t>(alphabet - kMinAlphabet);
  std::call_once(once[slot], [&] {
    std::vector<double> bps(static_cast<std::size_t>(alphabet) - 1);
    for (int i = 1; i < alphabet; ++i) {
      bps[static_cast<std::size_t>(i) - 1] =
          InverseNormalCdf(static_cast<double>(i) / alphabet);
    }
    cache[slot] = std::move(bps);
  });
  return cache[slot];
}

ts::Series Paa(ts::SeriesView values, std::size_t segments) {
  ts::Series out(segments, 0.0);
  const std::size_t n = values.size();
  if (n == 0 || segments == 0) return out;
  if (segments >= n) {
    // Upsample: each output point takes the covering input point.
    for (std::size_t i = 0; i < segments; ++i) {
      out[i] = values[i * n / segments];
    }
    return out;
  }
  // Fractional boundaries: input point j contributes to output segment(s)
  // proportionally to overlap, so sums are exact for any n/segments.
  std::vector<double> weight(segments, 0.0);
  const double seg_width = static_cast<double>(n) / segments;
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = static_cast<double>(j);
    const double hi = lo + 1.0;
    auto first = static_cast<std::size_t>(lo / seg_width);
    first = std::min(first, segments - 1);
    for (std::size_t s = first; s < segments; ++s) {
      const double seg_lo = s * seg_width;
      const double seg_hi = seg_lo + seg_width;
      const double overlap =
          std::min(hi, seg_hi) - std::max(lo, seg_lo);
      if (overlap <= 0.0) break;
      out[s] += values[j] * overlap;
      weight[s] += overlap;
    }
  }
  for (std::size_t s = 0; s < segments; ++s) {
    if (weight[s] > 0.0) out[s] /= weight[s];
  }
  return out;
}

namespace {

// Symbol binning against an already-fetched breakpoint table; the loops
// below hoist the table fetch out of their per-value iterations.
inline char SymbolFromBreakpoints(double value,
                                  const std::vector<double>& bps) {
  const auto it = std::upper_bound(bps.begin(), bps.end(), value);
  return static_cast<char>('a' + (it - bps.begin()));
}

}  // namespace

char Symbol(double value, int alphabet) {
  return SymbolFromBreakpoints(value, GaussianBreakpoints(alphabet));
}

std::string SaxWord(ts::SeriesView znormed, std::size_t paa_size,
                    int alphabet) {
  const ts::Series paa = Paa(znormed, paa_size);
  const auto& bps = GaussianBreakpoints(alphabet);
  std::string word(paa_size, 'a');
  for (std::size_t i = 0; i < paa_size; ++i) {
    word[i] = SymbolFromBreakpoints(paa[i], bps);
  }
  return word;
}

std::vector<SaxRecord> DiscretizeSlidingWindow(ts::SeriesView series,
                                               const SaxOptions& options) {
  std::vector<SaxRecord> out;
  if (options.window == 0 || series.size() < options.window) return out;
  const std::size_t count = series.size() - options.window + 1;
  out.reserve(count);
  ts::Series buf;
  for (std::size_t pos = 0; pos < count; ++pos) {
    ts::SeriesView window = series.subspan(pos, options.window);
    std::string word;
    if (options.znormalize) {
      buf.assign(window.begin(), window.end());
      ts::ZNormalizeInPlace(buf);
      word = SaxWord(buf, options.paa_size, options.alphabet);
    } else {
      word = SaxWord(window, options.paa_size, options.alphabet);
    }
    if (options.numerosity_reduction && !out.empty() &&
        out.back().word == word) {
      continue;  // Record only the first of a run of identical words.
    }
    out.push_back(SaxRecord{std::move(word), pos});
  }
  return out;
}

WindowMatrix SlidingWindows(ts::SeriesView series, std::size_t window,
                            bool znormalize, std::size_t num_threads) {
  WindowMatrix out;
  out.window = window;
  if (window == 0 || series.size() < window) return out;
  out.count = series.size() - window + 1;
  out.data.resize(out.count * window);
  ts::ParallelFor(out.count, num_threads, [&](std::size_t pos) {
    double* row = out.data.data() + pos * window;
    const double* src = series.data() + pos;
    if (!znormalize) {
      std::copy_n(src, window, row);
      return;
    }
    // Same flat-window rule and accumulation order as ZNormalizeInPlace,
    // with the mean pass shared between the mean and stddev. The moments
    // are read straight off the source window (identical values in
    // identical order), so the row is written exactly once — normalized —
    // instead of copy-then-normalize-in-place.
    const ts::SeriesView view(src, window);
    const double mu = ts::Mean(view);
    const double sigma = ts::StdDev(view, mu);
    if (sigma < ts::kFlatThreshold) {
      for (std::size_t i = 0; i < window; ++i) row[i] = src[i] - mu;
      return;
    }
    for (std::size_t i = 0; i < window; ++i) row[i] = (src[i] - mu) / sigma;
  });
  return out;
}

namespace {

// Precomputed point -> segment coverage for the fractional-boundary PAA
// (the `segments < n` branch of Paa). The overlap weights depend only on
// (n, segments), so PaaRows builds them once and shares the read-only
// plan across every window row instead of re-deriving the divisions and
// boundary tests per row. The build mirrors Paa's loop expressions
// exactly and PaaApply accumulates contributions in the same (j outer,
// segment inner) order, so the per-row output is bit-identical to Paa.
struct PaaPlan {
  std::vector<std::size_t> first;    // per point: first covered segment
  std::vector<std::size_t> count;    // per point: covered segment count
  std::vector<std::size_t> offset;   // per point: start into `overlap`
  std::vector<double> overlap;       // concatenated coverage weights
  std::vector<double> weight;        // per segment: total coverage
};

PaaPlan BuildPaaPlan(std::size_t n, std::size_t segments) {
  PaaPlan plan;
  plan.first.resize(n);
  plan.count.resize(n);
  plan.offset.resize(n);
  plan.weight.assign(segments, 0.0);
  const double seg_width = static_cast<double>(n) / segments;
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = static_cast<double>(j);
    const double hi = lo + 1.0;
    auto first = static_cast<std::size_t>(lo / seg_width);
    first = std::min(first, segments - 1);
    plan.first[j] = first;
    plan.offset[j] = plan.overlap.size();
    std::size_t covered = 0;
    for (std::size_t s = first; s < segments; ++s) {
      const double seg_lo = s * seg_width;
      const double seg_hi = seg_lo + seg_width;
      const double overlap = std::min(hi, seg_hi) - std::max(lo, seg_lo);
      if (overlap <= 0.0) break;
      plan.overlap.push_back(overlap);
      plan.weight[s] += overlap;
      ++covered;
    }
    plan.count[j] = covered;
  }
  return plan;
}

void PaaApply(ts::SeriesView values, std::size_t segments,
              const PaaPlan& plan, double* out) {
  std::fill_n(out, segments, 0.0);
  for (std::size_t j = 0; j < values.size(); ++j) {
    const double v = values[j];
    const double* ov = plan.overlap.data() + plan.offset[j];
    std::size_t s = plan.first[j];
    for (std::size_t c = 0; c < plan.count[j]; ++c, ++s) {
      out[s] += v * ov[c];
    }
  }
  for (std::size_t s = 0; s < segments; ++s) {
    if (plan.weight[s] > 0.0) out[s] /= plan.weight[s];
  }
}

}  // namespace

PaaMatrix PaaRows(const WindowMatrix& windows, std::size_t paa_size,
                  std::size_t num_threads) {
  PaaMatrix out;
  out.paa_size = paa_size;
  out.count = windows.count;
  out.data.resize(out.count * paa_size);  // Value-initialized to 0.0.
  const std::size_t n = windows.window;
  if (out.count == 0 || paa_size == 0 || n == 0) return out;
  if (paa_size >= n) {
    // Upsample branch of Paa: each output point takes the covering input
    // point; nothing to precompute.
    ts::ParallelFor(out.count, num_threads, [&](std::size_t i) {
      const ts::SeriesView row = windows.Row(i);
      double* dst = out.data.data() + i * paa_size;
      for (std::size_t s = 0; s < paa_size; ++s) {
        dst[s] = row[s * n / paa_size];
      }
    });
    return out;
  }
  const PaaPlan plan = BuildPaaPlan(n, paa_size);
  ts::ParallelFor(out.count, num_threads, [&](std::size_t i) {
    PaaApply(windows.Row(i), paa_size, plan,
             out.data.data() + i * paa_size);
  });
  return out;
}

std::vector<SaxRecord> RecordsFromPaa(const PaaMatrix& paa, int alphabet,
                                      bool numerosity_reduction) {
  std::vector<SaxRecord> out;
  out.reserve(paa.count);
  const auto& bps = GaussianBreakpoints(alphabet);
  std::string word(paa.paa_size, 'a');
  for (std::size_t i = 0; i < paa.count; ++i) {
    const ts::SeriesView row = paa.Row(i);
    for (std::size_t s = 0; s < paa.paa_size; ++s) {
      word[s] = SymbolFromBreakpoints(row[s], bps);
    }
    if (numerosity_reduction && !out.empty() && out.back().word == word) {
      continue;  // Record only the first of a run of identical words.
    }
    out.push_back(SaxRecord{word, i});
  }
  return out;
}

double MinDist(const std::string& a, const std::string& b, int alphabet,
               std::size_t n) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("MinDist: words must have equal length");
  }
  if (a.empty()) return 0.0;
  const auto& bps = GaussianBreakpoints(alphabet);
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const int ia = a[i] - 'a';
    const int ib = b[i] - 'a';
    const int lo = std::min(ia, ib);
    const int hi = std::max(ia, ib);
    if (hi - lo <= 1) continue;  // Adjacent or equal symbols: cell dist 0.
    const double d = bps[static_cast<std::size_t>(hi) - 1] -
                     bps[static_cast<std::size_t>(lo)];
    acc += d * d;
  }
  const double w = static_cast<double>(a.size());
  return std::sqrt(static_cast<double>(n) / w) * std::sqrt(acc);
}

}  // namespace rpm::sax
