// Symbolic Aggregate approXimation (Lin et al. 2007), the discretization
// substrate of RPM's Step 1 (Section 3.2.1), SAX-VSM and Fast Shapelets:
// PAA dimensionality reduction followed by symbol mapping against
// equiprobable Gaussian breakpoints, applied over a sliding window with
// numerosity reduction.

#ifndef RPM_SAX_SAX_H_
#define RPM_SAX_SAX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ts/series.h"

namespace rpm::sax {

/// Minimum / maximum supported alphabet size.
inline constexpr int kMinAlphabet = 2;
inline constexpr int kMaxAlphabet = 26;

/// The alphabet-1 breakpoints dividing N(0,1) into `alphabet` equiprobable
/// regions. Throws std::invalid_argument outside [kMinAlphabet, kMaxAlphabet].
const std::vector<double>& GaussianBreakpoints(int alphabet);

/// Piecewise Aggregate Approximation: mean of `segments` equal-width
/// chunks. Handles lengths not divisible by `segments` with fractional
/// (weighted) chunk boundaries, so every input point contributes.
ts::Series Paa(ts::SeriesView values, std::size_t segments);

/// Maps one value to its SAX symbol ('a' + region index).
char Symbol(double value, int alphabet);

/// Discretizes an (already z-normalized) subsequence to a `paa_size`-letter
/// SAX word over `alphabet` symbols.
std::string SaxWord(ts::SeriesView znormed, std::size_t paa_size,
                    int alphabet);

/// One sliding-window token: the SAX word plus the window's start offset
/// in the source series (the paper keeps offsets through grammar
/// induction to map rules back to raw subsequences).
struct SaxRecord {
  std::string word;
  std::size_t offset = 0;

  bool operator==(const SaxRecord&) const = default;
};

/// Discretization parameters (the SAXParams vector of Algorithm 1/3).
struct SaxOptions {
  std::size_t window = 30;   ///< sliding window length (points)
  std::size_t paa_size = 6;  ///< number of PAA segments per window
  int alphabet = 4;          ///< SAX alphabet size
  /// Record only the first of consecutive identical words (Section 3.2.1);
  /// this is what enables variable-length patterns downstream.
  bool numerosity_reduction = true;
  /// Z-normalize each window before discretization (standard SAX).
  bool znormalize = true;
};

/// Extracts every window of `options.window` points from `series`,
/// discretizes each, and applies numerosity reduction. Returns an empty
/// vector when the series is shorter than the window.
std::vector<SaxRecord> DiscretizeSlidingWindow(ts::SeriesView series,
                                               const SaxOptions& options);

// --- Staged discretization -------------------------------------------------
// DiscretizeSlidingWindow factored into its three data-parallel stages so
// the parameter-selection TrainingCache can memoize each layer: the window
// matrix is shared by every (paa, alphabet) pair at a fixed window, the
// PAA matrix by every alphabet at a fixed (window, paa). Each stage applies
// exactly the per-window operations of the streaming path, so composing
// them reproduces DiscretizeSlidingWindow bit for bit (asserted by
// training_cache_test).

/// Stage 1: every sliding window of `series` as a row of a row-major
/// `count x window` matrix, z-normalized per row when requested. `count`
/// is 0 when the series is shorter than the window. Rows are independent
/// and filled on the persistent pool when `num_threads > 1`.
struct WindowMatrix {
  std::size_t window = 0;
  std::size_t count = 0;
  ts::Series data;  ///< count * window values, row-major

  ts::SeriesView Row(std::size_t i) const {
    return ts::SeriesView(data.data() + i * window, window);
  }
};
WindowMatrix SlidingWindows(ts::SeriesView series, std::size_t window,
                            bool znormalize, std::size_t num_threads = 1);

/// Stage 2: PAA of every row; row-major `count x paa_size`.
struct PaaMatrix {
  std::size_t paa_size = 0;
  std::size_t count = 0;
  ts::Series data;  ///< count * paa_size values, row-major

  ts::SeriesView Row(std::size_t i) const {
    return ts::SeriesView(data.data() + i * paa_size, paa_size);
  }
};
PaaMatrix PaaRows(const WindowMatrix& windows, std::size_t paa_size,
                  std::size_t num_threads = 1);

/// Stage 3: symbolizes every PAA row and applies numerosity reduction.
/// Row i's offset is i (rows are consecutive window positions).
std::vector<SaxRecord> RecordsFromPaa(const PaaMatrix& paa, int alphabet,
                                      bool numerosity_reduction);

/// Classic SAX MINDIST lower bound between two equal-length words, scaled
/// for original subsequence length `n` (the words must come from the same
/// paa_size/alphabet). Used by the Fast Shapelets baseline.
double MinDist(const std::string& a, const std::string& b, int alphabet,
               std::size_t n);

}  // namespace rpm::sax

#endif  // RPM_SAX_SAX_H_
