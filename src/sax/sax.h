// Symbolic Aggregate approXimation (Lin et al. 2007), the discretization
// substrate of RPM's Step 1 (Section 3.2.1), SAX-VSM and Fast Shapelets:
// PAA dimensionality reduction followed by symbol mapping against
// equiprobable Gaussian breakpoints, applied over a sliding window with
// numerosity reduction.

#ifndef RPM_SAX_SAX_H_
#define RPM_SAX_SAX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ts/series.h"

namespace rpm::sax {

/// Minimum / maximum supported alphabet size.
inline constexpr int kMinAlphabet = 2;
inline constexpr int kMaxAlphabet = 26;

/// The alphabet-1 breakpoints dividing N(0,1) into `alphabet` equiprobable
/// regions. Throws std::invalid_argument outside [kMinAlphabet, kMaxAlphabet].
const std::vector<double>& GaussianBreakpoints(int alphabet);

/// Piecewise Aggregate Approximation: mean of `segments` equal-width
/// chunks. Handles lengths not divisible by `segments` with fractional
/// (weighted) chunk boundaries, so every input point contributes.
ts::Series Paa(ts::SeriesView values, std::size_t segments);

/// Maps one value to its SAX symbol ('a' + region index).
char Symbol(double value, int alphabet);

/// Discretizes an (already z-normalized) subsequence to a `paa_size`-letter
/// SAX word over `alphabet` symbols.
std::string SaxWord(ts::SeriesView znormed, std::size_t paa_size,
                    int alphabet);

/// One sliding-window token: the SAX word plus the window's start offset
/// in the source series (the paper keeps offsets through grammar
/// induction to map rules back to raw subsequences).
struct SaxRecord {
  std::string word;
  std::size_t offset = 0;

  bool operator==(const SaxRecord&) const = default;
};

/// Discretization parameters (the SAXParams vector of Algorithm 1/3).
struct SaxOptions {
  std::size_t window = 30;   ///< sliding window length (points)
  std::size_t paa_size = 6;  ///< number of PAA segments per window
  int alphabet = 4;          ///< SAX alphabet size
  /// Record only the first of consecutive identical words (Section 3.2.1);
  /// this is what enables variable-length patterns downstream.
  bool numerosity_reduction = true;
  /// Z-normalize each window before discretization (standard SAX).
  bool znormalize = true;
};

/// Extracts every window of `options.window` points from `series`,
/// discretizes each, and applies numerosity reduction. Returns an empty
/// vector when the series is shorter than the window.
std::vector<SaxRecord> DiscretizeSlidingWindow(ts::SeriesView series,
                                               const SaxOptions& options);

/// Classic SAX MINDIST lower bound between two equal-length words, scaled
/// for original subsequence length `n` (the words must come from the same
/// paa_size/alphabet). Used by the Fast Shapelets baseline.
double MinDist(const std::string& a, const std::string& b, int alphabet,
               std::size_t n);

}  // namespace rpm::sax

#endif  // RPM_SAX_SAX_H_
