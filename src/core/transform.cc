#include "core/transform.h"

#include <algorithm>

#include "distance/euclidean.h"
#include "ts/parallel.h"
#include "ts/resample.h"
#include "ts/rotation.h"
#include "ts/znorm.h"

namespace rpm::core {

double PatternDistance(const ts::Series& pattern, ts::SeriesView series) {
  if (pattern.empty() || series.empty()) return 0.0;
  if (pattern.size() <= series.size()) {
    return distance::FindBestMatch(pattern, series).distance;
  }
  // Degenerate: pattern longer than the series. Compare at series length.
  ts::Series shrunk = ts::ResampleLinear(pattern, series.size());
  ts::ZNormalizeInPlace(shrunk);
  ts::Series z(series.begin(), series.end());
  ts::ZNormalizeInPlace(z);
  return distance::NormalizedEuclidean(shrunk, z);
}

double PatternDistanceRotationInvariant(const ts::Series& pattern,
                                        ts::SeriesView series) {
  const double direct = PatternDistance(pattern, series);
  const ts::Series rotated = ts::RotateAtMidpoint(series);
  return std::min(direct, PatternDistance(pattern, rotated));
}

namespace {

// One pattern-to-series distance under the configured matching mode.
double DistanceWith(const ts::Series& pattern, ts::SeriesView series,
                    const TransformOptions& options) {
  if (options.approximate && pattern.size() <= series.size() &&
      !pattern.empty()) {
    return distance::FindBestMatchApprox(pattern, series, options.approx)
        .distance;
  }
  return PatternDistance(pattern, series);
}

}  // namespace

std::vector<double> TransformSeries(
    const std::vector<RepresentativePattern>& patterns,
    ts::SeriesView series, const TransformOptions& options) {
  std::vector<double> row;
  row.reserve(patterns.size());
  ts::Series rotated;
  if (options.rotation_invariant) rotated = ts::RotateAtMidpoint(series);
  for (const auto& p : patterns) {
    double d = DistanceWith(p.values, series, options);
    if (options.rotation_invariant) {
      d = std::min(d, DistanceWith(p.values, rotated, options));
    }
    row.push_back(d);
  }
  return row;
}

ml::FeatureDataset TransformDataset(
    const std::vector<RepresentativePattern>& patterns,
    const ts::Dataset& data, const TransformOptions& options) {
  ml::FeatureDataset out;
  out.x.resize(data.size());
  out.y.resize(data.size());
  ts::ParallelFor(data.size(), options.num_threads, [&](std::size_t i) {
    out.x[i] = TransformSeries(patterns, data[i].values, options);
    out.y[i] = data[i].label;
  });
  return out;
}

std::vector<double> TransformSeries(
    const std::vector<RepresentativePattern>& patterns,
    ts::SeriesView series, bool rotation_invariant) {
  TransformOptions options;
  options.rotation_invariant = rotation_invariant;
  return TransformSeries(patterns, series, options);
}

ml::FeatureDataset TransformDataset(
    const std::vector<RepresentativePattern>& patterns,
    const ts::Dataset& data, bool rotation_invariant) {
  TransformOptions options;
  options.rotation_invariant = rotation_invariant;
  return TransformDataset(patterns, data, options);
}

std::vector<RepresentativePattern> AsPatterns(
    const std::vector<PatternCandidate>& candidates) {
  std::vector<RepresentativePattern> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) {
    out.push_back(RepresentativePattern{c.class_label, c.values, c.frequency});
  }
  return out;
}

}  // namespace rpm::core
