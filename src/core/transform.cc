#include "core/transform.h"

#include <algorithm>

#include "core/phase_profile.h"
#include "distance/euclidean.h"
#include "ts/parallel.h"
#include "ts/resample.h"
#include "ts/rotation.h"
#include "ts/znorm.h"

namespace rpm::core {

double PatternDistance(const ts::Series& pattern, ts::SeriesView series) {
  if (pattern.empty() || series.empty()) return 0.0;
  if (pattern.size() <= series.size()) {
    return distance::FindBestMatch(pattern, series).distance;
  }
  // Degenerate: pattern longer than the series. Compare at series length.
  ts::Series shrunk = ts::ResampleLinear(pattern, series.size());
  ts::ZNormalizeInPlace(shrunk);
  ts::Series z(series.begin(), series.end());
  ts::ZNormalizeInPlace(z);
  return distance::NormalizedEuclidean(shrunk, z);
}

double PatternDistanceRotationInvariant(const ts::Series& pattern,
                                        ts::SeriesView series) {
  const double direct = PatternDistance(pattern, series);
  const ts::Series rotated = ts::RotateAtMidpoint(series);
  return std::min(direct, PatternDistance(pattern, rotated));
}

namespace {

// Degenerate case shared with PatternDistance: pattern longer than the
// series — compare at series length after resampling down.
double ShrunkPatternDistance(const ts::Series& pattern,
                             ts::SeriesView series) {
  ts::Series shrunk = ts::ResampleLinear(pattern, series.size());
  ts::ZNormalizeInPlace(shrunk);
  ts::Series z(series.begin(), series.end());
  ts::ZNormalizeInPlace(z);
  return distance::NormalizedEuclidean(shrunk, z);
}

}  // namespace

TransformEngine::TransformEngine(
    const std::vector<RepresentativePattern>& patterns,
    const TransformOptions& options)
    : patterns_(&patterns), options_(options) {
  // The exact scan is the only consumer of the precomputed contexts; the
  // approximate mode routes through the PAA-coarse scan instead.
  if (!options_.approximate) {
    for (const auto& p : patterns) matcher_.Add(p.values);
  }
}

// One pattern-to-series distance under the configured matching mode;
// mirrors the legacy per-call semantics (PatternDistance) exactly.
double TransformEngine::Distance(std::size_t i,
                                 const distance::SeriesContext& ctx) const {
  const ts::Series& pattern = (*patterns_)[i].values;
  const ts::SeriesView series = ctx.data();
  if (options_.approximate && pattern.size() <= series.size() &&
      !pattern.empty()) {
    return distance::FindBestMatchApprox(pattern, series, options_.approx)
        .distance;
  }
  if (pattern.empty() || series.empty()) return 0.0;
  if (pattern.size() > series.size()) {
    return ShrunkPatternDistance(pattern, series);
  }
  if (options_.approximate) {
    // Approximate mode builds no contexts; fall back to the per-call path
    // (only reachable for the empty-pattern / short-series guards above).
    return distance::FindBestMatch(pattern, series).distance;
  }
  // A pattern longer than the series was handled above, so the batched
  // scan always reports a found match here — never the unfound sentinel.
  return matcher_.Match(i, ctx).distance;
}

double TransformEngine::ResolveMatch(std::size_t i,
                                     const distance::BestMatch& match,
                                     ts::SeriesView series) const {
  // Same case order as Distance(): the store answers only the in-range
  // exact scans; the degenerate cells keep the legacy per-call semantics.
  const ts::Series& pattern = (*patterns_)[i].values;
  if (pattern.empty() || series.empty()) return 0.0;
  if (pattern.size() > series.size()) {
    return ShrunkPatternDistance(pattern, series);
  }
  // In-range pattern: the bucketed scan always finds a window.
  return match.distance;
}

std::vector<double> TransformEngine::Row(ts::SeriesView series) const {
  TransformScratch scratch;
  std::vector<double> row;
  RowInto(series, &scratch, &row);
  return row;
}

void TransformEngine::RowInto(ts::SeriesView series, TransformScratch* scratch,
                              std::vector<double>* row) const {
  const std::size_t k = patterns_->size();
  row->clear();
  row->reserve(k);
  const bool rotate = options_.rotation_invariant;
  scratch->ctx.Assign(series);
  if (rotate) {
    scratch->rotated = ts::RotateAtMidpoint(series);
    scratch->rotated_ctx.Assign(scratch->rotated);
  }
  if (options_.approximate) {
    // Approximate mode has no SoA store (it routes through the PAA-coarse
    // scan); keep the per-pattern loop over the reused contexts.
    for (std::size_t i = 0; i < k; ++i) {
      double d = Distance(i, scratch->ctx);
      if (rotate) d = std::min(d, Distance(i, scratch->rotated_ctx));
      row->push_back(d);
    }
    return;
  }
  // Exact mode: one bucketed pass answers all K patterns per context.
  matcher_.MatchAll(scratch->ctx, &scratch->match_scratch, &scratch->matches);
  if (rotate) {
    matcher_.MatchAll(scratch->rotated_ctx, &scratch->match_scratch,
                      &scratch->rotated_matches);
  }
  for (std::size_t i = 0; i < k; ++i) {
    double d = ResolveMatch(i, scratch->matches[i], series);
    if (rotate) {
      d = std::min(
          d, ResolveMatch(i, scratch->rotated_matches[i], scratch->rotated));
    }
    row->push_back(d);
  }
}

ml::FeatureDataset TransformEngine::Apply(const ts::Dataset& data) const {
  ScopedPhaseTimer timer(PhaseProfile::kTransform);
  ml::FeatureDataset out;
  out.x.resize(data.size());
  out.y.resize(data.size());
  ts::ParallelFor(data.size(), options_.num_threads, [&](std::size_t i) {
    // Warm per-worker buffers: pool threads persist across Apply calls,
    // so steady-state transforms allocate only the output rows.
    static thread_local TransformScratch scratch;
    RowInto(data[i].values, &scratch, &out.x[i]);
    out.y[i] = data[i].label;
  });
  return out;
}

std::vector<double> TransformSeries(
    const std::vector<RepresentativePattern>& patterns,
    ts::SeriesView series, const TransformOptions& options) {
  return TransformEngine(patterns, options).Row(series);
}

ml::FeatureDataset TransformDataset(
    const std::vector<RepresentativePattern>& patterns,
    const ts::Dataset& data, const TransformOptions& options) {
  return TransformEngine(patterns, options).Apply(data);
}

std::vector<double> TransformSeries(
    const std::vector<RepresentativePattern>& patterns,
    ts::SeriesView series, bool rotation_invariant) {
  TransformOptions options;
  options.rotation_invariant = rotation_invariant;
  return TransformSeries(patterns, series, options);
}

ml::FeatureDataset TransformDataset(
    const std::vector<RepresentativePattern>& patterns,
    const ts::Dataset& data, bool rotation_invariant) {
  TransformOptions options;
  options.rotation_invariant = rotation_invariant;
  return TransformDataset(patterns, data, options);
}

std::vector<RepresentativePattern> AsPatterns(
    const std::vector<PatternCandidate>& candidates) {
  std::vector<RepresentativePattern> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) {
    out.push_back(RepresentativePattern{c.class_label, c.values, c.frequency});
  }
  return out;
}

}  // namespace rpm::core
