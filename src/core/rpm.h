// Umbrella header: everything a downstream user needs to run RPM.
//
//   rpm::core::RpmOptions opt;                 // tune or keep defaults
//   rpm::core::RpmClassifier clf(opt);
//   clf.Train(train);                          // ts::Dataset
//   int label = clf.Classify(series);          // ts::Series
//
// See examples/quickstart.cc for a complete program.

#ifndef RPM_CORE_RPM_H_
#define RPM_CORE_RPM_H_

#include "core/candidates.h"      // IWYU pragma: export
#include "core/classifier.h"      // IWYU pragma: export
#include "core/distinct.h"        // IWYU pragma: export
#include "core/options.h"         // IWYU pragma: export
#include "core/parameter_selection.h"  // IWYU pragma: export
#include "core/pattern.h"         // IWYU pragma: export
#include "core/transform.h"       // IWYU pragma: export

#endif  // RPM_CORE_RPM_H_
