#include "core/classifier.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/candidates.h"
#include "core/distinct.h"
#include "core/transform.h"
#include "ml/metrics.h"
#include "ts/parallel.h"

namespace rpm::core {

void RpmClassifier::Train(const ts::Dataset& train) {
  if (train.empty()) {
    throw std::invalid_argument("RpmClassifier::Train: empty training set");
  }
  trained_ = false;
  patterns_.clear();
  report_ = TrainingReport{};
  using Clock = std::chrono::steady_clock;
  auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  // Majority label as the degenerate fallback.
  const auto hist = train.ClassHistogram();
  majority_label_ = hist.begin()->first;
  for (const auto& [label, count] : hist) {
    if (count > hist.at(majority_label_)) majority_label_ = label;
  }

  // Stage 0: SAX parameters per class (Section 4).
  auto t0 = Clock::now();
  ParameterSelectionResult params = SelectSaxParameters(train, options_);
  sax_by_class_ = std::move(params.sax_by_class);
  combos_evaluated_ = params.combos_evaluated;
  report_.parameter_selection_seconds = seconds_since(t0);
  report_.combos_evaluated = combos_evaluated_;

  // Stage 1+2: candidates and representative patterns (Algorithms 1, 2;
  // Section 4.3 combines per-class parameter results and re-selects).
  t0 = Clock::now();
  const std::vector<PatternCandidate> candidates =
      FindAllCandidates(train, sax_by_class_, options_);
  report_.candidate_mining_seconds = seconds_since(t0);
  report_.candidates_total = candidates.size();
  for (const auto& c : candidates) {
    ++report_.candidates_per_class[c.class_label];
  }

  t0 = Clock::now();
  patterns_ = FindDistinctPatterns(train, candidates, options_);
  report_.pattern_selection_seconds = seconds_since(t0);
  report_.patterns_selected = patterns_.size();
  if (patterns_.empty()) {
    trained_ = true;  // Majority-class fallback.
    return;
  }
  t0 = Clock::now();

  // Stage 3: fit the feature-space classifier (training transform is
  // never rotation-augmented; the invariance trick applies at test time).
  TransformOptions train_transform;
  train_transform.approximate = options_.approximate_matching;
  train_transform.approx.refine_top_k = options_.approx_refine_top_k;
  train_transform.num_threads = options_.num_threads;
  const ml::FeatureDataset transformed =
      TransformDataset(patterns_, train, train_transform);
  feature_classifier_ = ml::MakeFeatureClassifier(
      options_.final_classifier, options_.svm, options_.knn_k);
  feature_classifier_->Train(transformed);
  report_.classifier_fit_seconds = seconds_since(t0);
  trained_ = true;
}

TransformOptions RpmClassifier::ClassifyTransformOptions() const {
  TransformOptions transform;
  transform.rotation_invariant = options_.rotation_invariant;
  transform.approximate = options_.approximate_matching;
  transform.approx.refine_top_k = options_.approx_refine_top_k;
  return transform;
}

int RpmClassifier::Classify(ts::SeriesView series) const {
  if (!trained_) {
    throw std::logic_error("RpmClassifier::Classify before Train");
  }
  if (patterns_.empty() || feature_classifier_ == nullptr ||
      !feature_classifier_->trained()) {
    return majority_label_;
  }
  const std::vector<double> row =
      TransformSeries(patterns_, series, ClassifyTransformOptions());
  return feature_classifier_->Predict(row);
}

std::vector<int> RpmClassifier::ClassifyAll(const ts::Dataset& test) const {
  if (!trained_) {
    throw std::logic_error("RpmClassifier::ClassifyAll before Train");
  }
  if (patterns_.empty() || feature_classifier_ == nullptr ||
      !feature_classifier_->trained()) {
    return std::vector<int>(test.size(), majority_label_);
  }
  // Pattern contexts are built once here and shared by every test series
  // and worker thread; Predict is const and lock-free, so the loop is
  // deterministic for any thread count.
  const TransformEngine engine(patterns_, ClassifyTransformOptions());
  std::vector<int> out(test.size(), 0);
  ts::ParallelFor(test.size(), options_.num_threads, [&](std::size_t i) {
    out[i] = feature_classifier_->Predict(engine.Row(test[i].values));
  });
  return out;
}

void RpmClassifier::Save(std::ostream& out) const {
  if (!trained_) {
    throw std::logic_error("RpmClassifier::Save before Train");
  }
  out.precision(17);
  out << "RPM-MODEL v1\n";
  out << "flags " << (options_.rotation_invariant ? 1 : 0) << ' '
      << (options_.approximate_matching ? 1 : 0) << ' '
      << options_.approx_refine_top_k << ' '
      << static_cast<int>(options_.final_classifier) << ' '
      << options_.knn_k << '\n';
  out << "majority " << majority_label_ << '\n';
  out << "sax " << sax_by_class_.size() << '\n';
  for (const auto& [label, sax] : sax_by_class_) {
    out << label << ' ' << sax.window << ' ' << sax.paa_size << ' '
        << sax.alphabet << '\n';
  }
  out << "patterns " << patterns_.size() << '\n';
  for (const auto& p : patterns_) {
    out << p.class_label << ' ' << p.frequency << ' ' << p.values.size();
    for (double v : p.values) out << ' ' << v;
    out << '\n';
  }
  out << "classifier "
      << (patterns_.empty() || feature_classifier_ == nullptr ? 0 : 1)
      << '\n';
  if (!patterns_.empty() && feature_classifier_ != nullptr) {
    feature_classifier_->Save(out);
  }
}

void RpmClassifier::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("RpmClassifier::SaveToFile: cannot open " +
                             path);
  }
  Save(out);
  if (!out) {
    throw std::runtime_error("RpmClassifier::SaveToFile: write failed");
  }
}

RpmClassifier RpmClassifier::Load(std::istream& in) {
  auto fail = [](const std::string& what) -> void {
    throw std::runtime_error("RpmClassifier::Load: " + what);
  };
  std::string line;
  if (!std::getline(in, line) || line != "RPM-MODEL v1") fail("bad magic");

  RpmClassifier clf;
  std::string tag;
  int rotation = 0;
  int approximate = 0;
  int classifier_kind = 0;
  if (!(in >> tag >> rotation >> approximate >>
        clf.options_.approx_refine_top_k >> classifier_kind >>
        clf.options_.knn_k) ||
      tag != "flags") {
    fail("bad flags");
  }
  clf.options_.rotation_invariant = rotation != 0;
  clf.options_.approximate_matching = approximate != 0;
  clf.options_.final_classifier =
      static_cast<ml::FeatureClassifierKind>(classifier_kind);
  if (!(in >> tag >> clf.majority_label_) || tag != "majority") {
    fail("bad majority");
  }
  std::size_t num_sax = 0;
  if (!(in >> tag >> num_sax) || tag != "sax") fail("bad sax header");
  for (std::size_t i = 0; i < num_sax; ++i) {
    int label = 0;
    sax::SaxOptions sax;
    in >> label >> sax.window >> sax.paa_size >> sax.alphabet;
    clf.sax_by_class_[label] = sax;
  }
  std::size_t num_patterns = 0;
  if (!(in >> tag >> num_patterns) || tag != "patterns") {
    fail("bad patterns header");
  }
  clf.patterns_.resize(num_patterns);
  for (auto& p : clf.patterns_) {
    std::size_t len = 0;
    in >> p.class_label >> p.frequency >> len;
    p.values.resize(len);
    for (double& v : p.values) in >> v;
  }
  int has_classifier = 0;
  if (!(in >> tag >> has_classifier) || tag != "classifier") {
    fail("bad classifier header");
  }
  if (has_classifier != 0) {
    clf.feature_classifier_ = ml::MakeFeatureClassifier(
        clf.options_.final_classifier, clf.options_.svm, clf.options_.knn_k);
    clf.feature_classifier_->Load(in);
  }
  if (!in) fail("truncated input");
  clf.trained_ = true;
  return clf;
}

RpmClassifier RpmClassifier::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("RpmClassifier::LoadFromFile: cannot open " +
                             path);
  }
  return Load(in);
}

double RpmClassifier::Evaluate(const ts::Dataset& test) const {
  std::vector<int> truth;
  truth.reserve(test.size());
  for (const auto& inst : test) truth.push_back(inst.label);
  return ml::ErrorRate(ClassifyAll(test), truth);
}

}  // namespace rpm::core
