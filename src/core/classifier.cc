#include "core/classifier.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/candidates.h"
#include "core/distinct.h"
#include "core/phase_profile.h"
#include "core/sampling.h"
#include "core/transform.h"
#include "ml/metrics.h"
#include "ts/dataset_io.h"
#include "ts/parallel.h"

namespace rpm::core {

void RpmClassifier::Train(const ts::Dataset& train) {
  if (train.empty()) {
    throw std::invalid_argument("RpmClassifier::Train: empty training set");
  }
  trained_ = false;
  patterns_.clear();
  report_ = TrainingReport{};
  using Clock = std::chrono::steady_clock;
  auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  // Majority label as the degenerate fallback.
  const auto hist = train.ClassHistogram();
  majority_label_ = hist.begin()->first;
  for (const auto& [label, count] : hist) {
    if (count > hist.at(majority_label_)) majority_label_ = label;
  }

  // Stage 0: SAX parameters per class (Section 4).
  auto t0 = Clock::now();
  ParameterSelectionResult params = [&] {
    ScopedPhaseTimer timer(PhaseProfile::kSelection);
    return SelectSaxParameters(train, options_);
  }();
  sax_by_class_ = std::move(params.sax_by_class);
  combos_evaluated_ = params.combos_evaluated;
  report_.parameter_selection_seconds = seconds_since(t0);
  report_.combos_evaluated = combos_evaluated_;

  // Stage 1+2: candidates and representative patterns (Algorithms 1, 2;
  // Section 4.3 combines per-class parameter results and re-selects).
  t0 = Clock::now();
  const std::vector<PatternCandidate> candidates =
      FindAllCandidates(train, sax_by_class_, options_);
  report_.candidate_mining_seconds = seconds_since(t0);
  report_.candidates_total = candidates.size();
  for (const auto& c : candidates) {
    ++report_.candidates_per_class[c.class_label];
  }

  t0 = Clock::now();
  patterns_ = FindDistinctPatterns(train, candidates, options_);
  report_.pattern_selection_seconds = seconds_since(t0);
  report_.patterns_selected = patterns_.size();
  if (patterns_.empty()) {
    trained_ = true;  // Majority-class fallback.
    return;
  }
  t0 = Clock::now();

  // Stage 3: fit the feature-space classifier (training transform is
  // never rotation-augmented; the invariance trick applies at test time).
  TransformOptions train_transform;
  train_transform.approximate = options_.approximate_matching;
  train_transform.approx.refine_top_k = options_.approx_refine_top_k;
  train_transform.num_threads = options_.num_threads;
  const ml::FeatureDataset transformed =
      TransformDataset(patterns_, train, train_transform);
  feature_classifier_ = ml::MakeFeatureClassifier(
      options_.final_classifier, options_.svm, options_.knn_k);
  feature_classifier_->Train(transformed);
  report_.classifier_fit_seconds = seconds_since(t0);
  trained_ = true;
}

void RpmClassifier::Train(const ts::DatasetReader& archive,
                          const TrainFromDiskOptions& disk) {
  if (archive.empty()) {
    throw std::invalid_argument("RpmClassifier::Train: empty archive");
  }
  // Pick the training subset off the label column alone (decoded at
  // open; no value pages are faulted in), then materialize just those
  // series. With no binding cap StratifiedSample returns every index in
  // order, so this is bit-identical to Train(archive.ReadAll()).
  const std::vector<std::size_t> subset = StratifiedSample(
      archive.labels(), disk.max_train_per_class, options_.seed);
  Train(archive.ReadSubset(subset));
}

TransformOptions RpmClassifier::classify_transform_options() const {
  TransformOptions transform;
  transform.rotation_invariant = options_.rotation_invariant;
  transform.approximate = options_.approximate_matching;
  transform.approx.refine_top_k = options_.approx_refine_top_k;
  return transform;
}

int RpmClassifier::Classify(ts::SeriesView series) const {
  if (!trained_) {
    throw std::logic_error("RpmClassifier::Classify before Train");
  }
  if (patterns_.empty() || feature_classifier_ == nullptr ||
      !feature_classifier_->trained()) {
    return majority_label_;
  }
  const std::vector<double> row =
      TransformSeries(patterns_, series, classify_transform_options());
  return feature_classifier_->Predict(row);
}

std::vector<int> RpmClassifier::ClassifyAll(const ts::Dataset& test) const {
  if (!trained_) {
    throw std::logic_error("RpmClassifier::ClassifyAll before Train");
  }
  const ClassificationEngine engine(*this);
  return engine.ClassifyDataset(test, options_.num_threads);
}

ClassificationEngine::ClassificationEngine(const RpmClassifier& clf)
    : clf_(&clf) {
  if (!clf.trained()) {
    throw std::logic_error("ClassificationEngine: classifier not trained");
  }
  if (!clf.patterns().empty() && clf.feature_classifier() != nullptr &&
      clf.feature_classifier()->trained()) {
    engine_.emplace(clf.patterns(), clf.classify_transform_options());
  }
}

std::size_t ClassificationEngine::num_patterns() const {
  return clf_->patterns().size();
}

std::vector<double> ClassificationEngine::Row(ts::SeriesView series) const {
  if (!engine_.has_value()) {
    throw std::logic_error("ClassificationEngine::Row: no feature space");
  }
  return engine_->Row(series);
}

void ClassificationEngine::RowInto(ts::SeriesView series,
                                   TransformScratch* scratch,
                                   std::vector<double>* row) const {
  if (!engine_.has_value()) {
    throw std::logic_error("ClassificationEngine::RowInto: no feature space");
  }
  engine_->RowInto(series, scratch, row);
}

int ClassificationEngine::PredictRow(std::span<const double> row) const {
  if (!engine_.has_value()) {
    throw std::logic_error(
        "ClassificationEngine::PredictRow: no feature space");
  }
  return clf_->feature_classifier()->Predict(row);
}

int ClassificationEngine::Classify(ts::SeriesView series) const {
  if (!engine_.has_value()) return clf_->majority_label();
  return clf_->feature_classifier()->Predict(engine_->Row(series));
}

std::vector<int> ClassificationEngine::ClassifyBatch(
    std::span<const ts::Series> batch, std::size_t num_threads) const {
  if (!engine_.has_value()) {
    return std::vector<int>(batch.size(), clf_->majority_label());
  }
  // Contexts are shared read-only and Predict is const, so the loop is
  // deterministic for any thread count.
  std::vector<int> out(batch.size(), 0);
  ts::ParallelFor(batch.size(), num_threads, [&](std::size_t i) {
    out[i] = clf_->feature_classifier()->Predict(engine_->Row(batch[i]));
  });
  return out;
}

std::vector<int> ClassificationEngine::ClassifyDataset(
    const ts::Dataset& data, std::size_t num_threads) const {
  if (!engine_.has_value()) {
    return std::vector<int>(data.size(), clf_->majority_label());
  }
  std::vector<int> out(data.size(), 0);
  ts::ParallelFor(data.size(), num_threads, [&](std::size_t i) {
    out[i] = clf_->feature_classifier()->Predict(engine_->Row(data[i].values));
  });
  return out;
}

void RpmClassifier::Save(std::ostream& out) const {
  if (!trained_) {
    throw std::logic_error("RpmClassifier::Save before Train");
  }
  out.precision(17);
  out << "RPM-MODEL v1\n";
  out << "flags " << (options_.rotation_invariant ? 1 : 0) << ' '
      << (options_.approximate_matching ? 1 : 0) << ' '
      << options_.approx_refine_top_k << ' '
      << static_cast<int>(options_.final_classifier) << ' '
      << options_.knn_k << '\n';
  out << "majority " << majority_label_ << '\n';
  out << "sax " << sax_by_class_.size() << '\n';
  for (const auto& [label, sax] : sax_by_class_) {
    out << label << ' ' << sax.window << ' ' << sax.paa_size << ' '
        << sax.alphabet << '\n';
  }
  out << "patterns " << patterns_.size() << '\n';
  for (const auto& p : patterns_) {
    out << p.class_label << ' ' << p.frequency << ' ' << p.values.size();
    for (double v : p.values) out << ' ' << v;
    out << '\n';
  }
  out << "classifier "
      << (patterns_.empty() || feature_classifier_ == nullptr ? 0 : 1)
      << '\n';
  if (!patterns_.empty() && feature_classifier_ != nullptr) {
    feature_classifier_->Save(out);
  }
}

void RpmClassifier::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("RpmClassifier::SaveToFile: cannot open " +
                             path);
  }
  Save(out);
  if (!out) {
    throw std::runtime_error("RpmClassifier::SaveToFile: write failed");
  }
}

namespace {

// Sanity caps applied while parsing persisted models: a corrupt or
// malicious header must produce a descriptive error, not a multi-gigabyte
// resize. Real models are orders of magnitude below both.
constexpr std::size_t kMaxModelEntries = std::size_t{1} << 20;
constexpr std::size_t kMaxPatternLength = std::size_t{1} << 24;

}  // namespace

RpmClassifier RpmClassifier::Load(std::istream& in) {
  auto fail = [](const std::string& what) -> void {
    throw std::runtime_error("RpmClassifier::Load: " + what);
  };
  // Header: magic bytes and format version are checked separately so a
  // non-model file and a model from an incompatible build fail with
  // distinct, actionable messages.
  std::string magic;
  if (!(in >> magic)) fail("empty or unreadable stream");
  if (magic != "RPM-MODEL") {
    fail("bad magic '" + magic + "' (not an RPM model file)");
  }
  std::string version;
  if (!(in >> version)) fail("missing format version");
  if (version != "v1") {
    fail("unsupported model format version '" + version +
         "' (this build reads v1)");
  }

  RpmClassifier clf;
  std::string tag;
  int rotation = 0;
  int approximate = 0;
  int classifier_kind = 0;
  if (!(in >> tag >> rotation >> approximate >>
        clf.options_.approx_refine_top_k >> classifier_kind >>
        clf.options_.knn_k) ||
      tag != "flags") {
    fail("bad flags");
  }
  if (classifier_kind < 0 ||
      classifier_kind > static_cast<int>(ml::FeatureClassifierKind::kNaiveBayes)) {
    fail("corrupt classifier kind " + std::to_string(classifier_kind));
  }
  clf.options_.rotation_invariant = rotation != 0;
  clf.options_.approximate_matching = approximate != 0;
  clf.options_.final_classifier =
      static_cast<ml::FeatureClassifierKind>(classifier_kind);
  if (!(in >> tag >> clf.majority_label_) || tag != "majority") {
    fail("bad majority");
  }
  std::size_t num_sax = 0;
  if (!(in >> tag >> num_sax) || tag != "sax") fail("bad sax header");
  if (num_sax > kMaxModelEntries) {
    fail("corrupt sax entry count " + std::to_string(num_sax));
  }
  for (std::size_t i = 0; i < num_sax; ++i) {
    int label = 0;
    sax::SaxOptions sax;
    if (!(in >> label >> sax.window >> sax.paa_size >> sax.alphabet)) {
      fail("truncated sax section");
    }
    if (sax.window == 0 || sax.paa_size == 0 || sax.alphabet < 2) {
      fail("corrupt sax parameters for class " + std::to_string(label));
    }
    clf.sax_by_class_[label] = sax;
  }
  std::size_t num_patterns = 0;
  if (!(in >> tag >> num_patterns) || tag != "patterns") {
    fail("bad patterns header");
  }
  if (num_patterns > kMaxModelEntries) {
    fail("corrupt pattern count " + std::to_string(num_patterns));
  }
  clf.patterns_.resize(num_patterns);
  for (std::size_t i = 0; i < num_patterns; ++i) {
    auto& p = clf.patterns_[i];
    std::size_t len = 0;
    if (!(in >> p.class_label >> p.frequency >> len)) {
      fail("truncated pattern header (pattern " + std::to_string(i) + " of " +
           std::to_string(num_patterns) + ")");
    }
    if (len == 0 || len > kMaxPatternLength) {
      fail("corrupt pattern length " + std::to_string(len) + " (pattern " +
           std::to_string(i) + ")");
    }
    p.values.resize(len);
    for (double& v : p.values) {
      if (!(in >> v)) {
        fail("truncated pattern values (pattern " + std::to_string(i) + ")");
      }
    }
  }
  int has_classifier = 0;
  if (!(in >> tag >> has_classifier) || tag != "classifier") {
    fail("bad classifier header");
  }
  if (has_classifier != 0) {
    clf.feature_classifier_ = ml::MakeFeatureClassifier(
        clf.options_.final_classifier, clf.options_.svm, clf.options_.knn_k);
    clf.feature_classifier_->Load(in);
    if (!in) fail("truncated classifier section");
  }
  clf.trained_ = true;
  return clf;
}

RpmClassifier RpmClassifier::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("RpmClassifier::LoadFromFile: cannot open " +
                             path);
  }
  return Load(in);
}

double RpmClassifier::Evaluate(const ts::Dataset& test) const {
  std::vector<int> truth;
  truth.reserve(test.size());
  for (const auto& inst : test) truth.push_back(inst.label);
  return ml::ErrorRate(ClassifyAll(test), truth);
}

}  // namespace rpm::core
