// Time-series -> feature-space transformation (Section 3.1): a series of
// length m becomes a K-vector of closest-match distances to the K
// representative patterns. The rotation-invariant variant (Section 6.1)
// also matches against the series rotated at its midpoint and keeps the
// minimum per pattern.

#ifndef RPM_CORE_TRANSFORM_H_
#define RPM_CORE_TRANSFORM_H_

#include <vector>

#include "core/pattern.h"
#include "distance/approximate.h"
#include "distance/matcher.h"
#include "ml/feature_dataset.h"
#include "ts/series.h"

namespace rpm::core {

/// Controls how series are embedded into the pattern-distance space.
struct TransformOptions {
  /// Also match against the midpoint-rotated series (Section 6.1).
  bool rotation_invariant = false;
  /// Use the PAA-coarse approximate scan instead of the exact one
  /// (Section 5.3's "approximate matching" speedup).
  bool approximate = false;
  distance::ApproxMatchOptions approx;
  /// Worker threads for whole-dataset transforms (deterministic).
  std::size_t num_threads = 1;
};

/// Reusable per-call buffers for TransformEngine::RowInto: the series
/// contexts (prefix sums), the rotated-series copy, and the matcher's
/// MatchAll scratch. A long-lived scratch makes steady-state rows
/// allocation-free — the warm-path hook the streaming scorer and the
/// dataset transform workers keep between calls. Default-constructed
/// scratch works anywhere; it just starts cold.
struct TransformScratch {
  distance::SeriesContext ctx;
  distance::SeriesContext rotated_ctx;
  ts::Series rotated;
  distance::MatchScratch match_scratch;
  std::vector<distance::BestMatch> matches;
  std::vector<distance::BestMatch> rotated_matches;
};

/// Closest-match distance of one pattern inside one series (both directions
/// of degenerate lengths handled: a pattern longer than the series is
/// resampled down before matching).
double PatternDistance(const ts::Series& pattern, ts::SeriesView series);

/// Rotation-invariant variant: min over the series and its
/// midpoint-rotated copy.
double PatternDistanceRotationInvariant(const ts::Series& pattern,
                                        ts::SeriesView series);

/// Reusable transform engine over the batched matching backend
/// (distance/matcher.h): one PatternContext per representative pattern,
/// built once and shared across every series and every worker thread.
/// Prefer this over the free functions when transforming repeatedly
/// against a fixed pattern set (classification loops, benches).
class TransformEngine {
 public:
  /// Keeps a reference to `patterns`; they must outlive the engine.
  TransformEngine(const std::vector<RepresentativePattern>& patterns,
                  const TransformOptions& options);

  /// The K-dim feature row of one series.
  std::vector<double> Row(ts::SeriesView series) const;

  /// Alloc-free form of Row: contexts and match buffers live in
  /// `scratch`, the row is written into `*row` (cleared first). In exact
  /// mode all K patterns are matched through one bucketed SoA MatchAll
  /// pass per context instead of K independent scans; results are
  /// bit-identical to Row.
  void RowInto(ts::SeriesView series, TransformScratch* scratch,
               std::vector<double>* row) const;

  /// Transforms a labeled dataset (parallel over options.num_threads;
  /// bit-identical for any thread count).
  ml::FeatureDataset Apply(const ts::Dataset& data) const;

 private:
  double Distance(std::size_t i, const distance::SeriesContext& ctx) const;
  /// Distance of pattern `i` given its MatchAll result against `series`
  /// (resolves the sentinel/degenerate cases the store cannot answer).
  double ResolveMatch(std::size_t i, const distance::BestMatch& match,
                      ts::SeriesView series) const;

  const std::vector<RepresentativePattern>* patterns_;
  TransformOptions options_;
  distance::BatchMatcher matcher_;
};

/// Transforms one series into the K-dim feature row.
std::vector<double> TransformSeries(
    const std::vector<RepresentativePattern>& patterns, ts::SeriesView series,
    const TransformOptions& options);

/// Transforms a labeled dataset; labels carry over.
ml::FeatureDataset TransformDataset(
    const std::vector<RepresentativePattern>& patterns,
    const ts::Dataset& data, const TransformOptions& options);

/// Back-compat overloads: `rotation_invariant` only, exact matching.
std::vector<double> TransformSeries(
    const std::vector<RepresentativePattern>& patterns, ts::SeriesView series,
    bool rotation_invariant = false);
ml::FeatureDataset TransformDataset(
    const std::vector<RepresentativePattern>& patterns,
    const ts::Dataset& data, bool rotation_invariant = false);

/// Convenience overload for candidate pools (Algorithm 2 transforms the
/// training data against *candidates* before feature selection).
std::vector<RepresentativePattern> AsPatterns(
    const std::vector<PatternCandidate>& candidates);

}  // namespace rpm::core

#endif  // RPM_CORE_TRANSFORM_H_
