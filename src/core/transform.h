// Time-series -> feature-space transformation (Section 3.1): a series of
// length m becomes a K-vector of closest-match distances to the K
// representative patterns. The rotation-invariant variant (Section 6.1)
// also matches against the series rotated at its midpoint and keeps the
// minimum per pattern.

#ifndef RPM_CORE_TRANSFORM_H_
#define RPM_CORE_TRANSFORM_H_

#include <vector>

#include "core/pattern.h"
#include "distance/approximate.h"
#include "distance/matcher.h"
#include "ml/feature_dataset.h"
#include "ts/series.h"

namespace rpm::core {

/// Controls how series are embedded into the pattern-distance space.
struct TransformOptions {
  /// Also match against the midpoint-rotated series (Section 6.1).
  bool rotation_invariant = false;
  /// Use the PAA-coarse approximate scan instead of the exact one
  /// (Section 5.3's "approximate matching" speedup).
  bool approximate = false;
  distance::ApproxMatchOptions approx;
  /// Worker threads for whole-dataset transforms (deterministic).
  std::size_t num_threads = 1;
};

/// Closest-match distance of one pattern inside one series (both directions
/// of degenerate lengths handled: a pattern longer than the series is
/// resampled down before matching).
double PatternDistance(const ts::Series& pattern, ts::SeriesView series);

/// Rotation-invariant variant: min over the series and its
/// midpoint-rotated copy.
double PatternDistanceRotationInvariant(const ts::Series& pattern,
                                        ts::SeriesView series);

/// Reusable transform engine over the batched matching backend
/// (distance/matcher.h): one PatternContext per representative pattern,
/// built once and shared across every series and every worker thread.
/// Prefer this over the free functions when transforming repeatedly
/// against a fixed pattern set (classification loops, benches).
class TransformEngine {
 public:
  /// Keeps a reference to `patterns`; they must outlive the engine.
  TransformEngine(const std::vector<RepresentativePattern>& patterns,
                  const TransformOptions& options);

  /// The K-dim feature row of one series.
  std::vector<double> Row(ts::SeriesView series) const;

  /// Transforms a labeled dataset (parallel over options.num_threads;
  /// bit-identical for any thread count).
  ml::FeatureDataset Apply(const ts::Dataset& data) const;

 private:
  double Distance(std::size_t i, const distance::SeriesContext& ctx) const;

  const std::vector<RepresentativePattern>* patterns_;
  TransformOptions options_;
  distance::BatchMatcher matcher_;
};

/// Transforms one series into the K-dim feature row.
std::vector<double> TransformSeries(
    const std::vector<RepresentativePattern>& patterns, ts::SeriesView series,
    const TransformOptions& options);

/// Transforms a labeled dataset; labels carry over.
ml::FeatureDataset TransformDataset(
    const std::vector<RepresentativePattern>& patterns,
    const ts::Dataset& data, const TransformOptions& options);

/// Back-compat overloads: `rotation_invariant` only, exact matching.
std::vector<double> TransformSeries(
    const std::vector<RepresentativePattern>& patterns, ts::SeriesView series,
    bool rotation_invariant = false);
ml::FeatureDataset TransformDataset(
    const std::vector<RepresentativePattern>& patterns,
    const ts::Dataset& data, bool rotation_invariant = false);

/// Convenience overload for candidate pools (Algorithm 2 transforms the
/// training data against *candidates* before feature selection).
std::vector<RepresentativePattern> AsPatterns(
    const std::vector<PatternCandidate>& candidates);

}  // namespace rpm::core

#endif  // RPM_CORE_TRANSFORM_H_
