// Opt-in wall-clock accounting for the training-path phases (used by
// bench/table2_runtime --profile). Disabled it is a single relaxed
// atomic load per instrumented scope, so the pipeline keeps its normal
// cost; enabled, each scope adds its elapsed nanoseconds to a global
// per-phase counter with fetch_add, so instrumented code is free to run
// inside ParallelFor workers.
//
// Phases are not disjoint: parameter selection (kSelection) internally
// re-runs discretization, grammar inference, and clustering for every
// combo x split it probes, and those nested scopes accrue into their own
// counters as well. Readers should treat kSelection as the end-to-end
// stage-0 time and the other counters as "total time spent in that kind
// of work anywhere in training".

#ifndef RPM_CORE_PHASE_PROFILE_H_
#define RPM_CORE_PHASE_PROFILE_H_

#include <array>
#include <chrono>
#include <cstddef>

namespace rpm::core {

class PhaseProfile {
 public:
  enum Phase : std::size_t {
    kDiscretization = 0,  // SAX sliding-window discretization
    kGrammar,             // Sequitur/Re-Pair inference + motif extraction
    kClustering,          // iterative 2-way splitting incl. the matrix
    kSelection,           // stage 0: DIRECT SAX parameter selection
    kTransform,           // pattern-to-feature transform (best-match scans)
    kSvm,                 // SVM training/prediction (selection CV + final fit)
    kNumPhases,
  };

  /// Enables or disables accumulation (process-wide). Off by default.
  static void Enable(bool on);
  static bool enabled();

  /// Zeroes every per-phase counter.
  static void Reset();

  /// Adds `seconds` to a phase counter. No-op while disabled.
  static void Add(Phase phase, double seconds);

  /// Accumulated seconds per phase, indexed by Phase.
  static std::array<double, kNumPhases> Totals();

  /// Human-readable phase name ("discretization", ...).
  static const char* Name(Phase phase);
};

/// RAII scope that charges its lifetime to a phase. The clock is only
/// read when profiling is enabled at construction time.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(PhaseProfile::Phase phase)
      : phase_(phase), armed_(PhaseProfile::enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhaseTimer() {
    if (armed_) {
      PhaseProfile::Add(
          phase_, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
    }
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseProfile::Phase phase_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rpm::core

#endif  // RPM_CORE_PHASE_PROFILE_H_
