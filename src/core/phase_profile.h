// Opt-in wall-clock accounting for the training-path phases (used by
// bench/table2_runtime --profile). Disabled it is two relaxed atomic
// loads per instrumented scope, so the pipeline keeps its normal cost;
// enabled, each scope adds its elapsed nanoseconds to a global
// per-phase counter with fetch_add, so instrumented code is free to run
// inside ParallelFor workers.
//
// Each scope is also a trace span: when the process tracer
// (obs/trace.h) is enabled, the scope's timestamps are forwarded to
// Tracer::MaybeRecord under the span name "train.<phase>" — the same
// clock reads serve both accountings, and span sampling applies as
// usual. This is how training phases appear next to serve/stream spans
// in the TRACE view.
//
// Phases are not disjoint: parameter selection (kSelection) internally
// re-runs discretization, grammar inference, and clustering for every
// combo x split it probes, and those nested scopes accrue into their own
// counters as well. Readers should treat kSelection as the end-to-end
// stage-0 time and the other counters as "total time spent in that kind
// of work anywhere in training".

#ifndef RPM_CORE_PHASE_PROFILE_H_
#define RPM_CORE_PHASE_PROFILE_H_

#include <array>
#include <chrono>
#include <cstddef>

#include "obs/trace.h"

namespace rpm::core {

class PhaseProfile {
 public:
  enum Phase : std::size_t {
    kDiscretization = 0,  // SAX sliding-window discretization
    kGrammar,             // Sequitur/Re-Pair inference + motif extraction
    kClustering,          // iterative 2-way splitting incl. the matrix
    kSelection,           // stage 0: DIRECT SAX parameter selection
    kTransform,           // pattern-to-feature transform (best-match scans)
    kSvm,                 // SVM training/prediction (selection CV + final fit)
    kDistinct,            // similar-candidate removal (tau threshold + tests)
    kShapelets,           // shapelet-baseline candidate scans (ST/FS eval)
    kNumPhases,
  };

  /// Enables or disables accumulation (process-wide). Off by default.
  static void Enable(bool on);
  static bool enabled();

  /// Zeroes every per-phase counter.
  static void Reset();

  /// Adds `seconds` to a phase counter. No-op while disabled.
  static void Add(Phase phase, double seconds);

  /// Accumulated seconds per phase, indexed by Phase.
  static std::array<double, kNumPhases> Totals();

  /// Human-readable phase name ("discretization", ...).
  static const char* Name(Phase phase);

  /// Trace span name ("train.discretization", ...); a static string.
  static const char* SpanName(Phase phase);
};

/// RAII scope that charges its lifetime to a phase and emits a trace
/// span. The clock is only read when profiling or tracing is enabled at
/// construction time.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(PhaseProfile::Phase phase)
      : phase_(phase),
        armed_(PhaseProfile::enabled() || obs::Tracer::Default().enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhaseTimer() {
    if (armed_) {
      const auto end = std::chrono::steady_clock::now();
      PhaseProfile::Add(
          phase_, std::chrono::duration<double>(end - start_).count());
      obs::Tracer::Default().MaybeRecord(PhaseProfile::SpanName(phase_),
                                         start_, end);
    }
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseProfile::Phase phase_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rpm::core

#endif  // RPM_CORE_PHASE_PROFILE_H_
