#include "core/distinct.h"

#include <algorithm>
#include <cmath>

#include "core/transform.h"
#include "distance/euclidean.h"
#include "distance/matcher.h"
#include "ml/feature_selection.h"

namespace rpm::core {

double CandidateDistance(const PatternCandidate& a,
                         const PatternCandidate& b) {
  const ts::Series& shorter = a.values.size() <= b.values.size()
                                  ? a.values
                                  : b.values;
  const ts::Series& longer = a.values.size() <= b.values.size()
                                 ? b.values
                                 : a.values;
  if (shorter.size() == longer.size()) {
    return distance::NormalizedEuclidean(shorter, longer);
  }
  return distance::FindBestMatch(shorter, longer).distance;
}

double ComputeSimilarityThreshold(
    const std::vector<PatternCandidate>& candidates, double percentile) {
  std::vector<double> pooled;
  for (const auto& c : candidates) {
    // Within-cluster distances were measured on full-length members;
    // normalize by sqrt(len) to line up with the closest-match scale.
    const double inv_sqrt_len =
        c.values.empty() ? 1.0
                         : 1.0 / std::sqrt(static_cast<double>(
                                     c.values.size()));
    for (double d : c.within_cluster_distances) {
      pooled.push_back(d * inv_sqrt_len);
    }
  }
  if (pooled.empty()) return 0.0;
  std::sort(pooled.begin(), pooled.end());
  const double rank = std::clamp(percentile, 0.0, 100.0) / 100.0 *
                      static_cast<double>(pooled.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, pooled.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return pooled[lo] * (1.0 - frac) + pooled[hi] * frac;
}

std::vector<PatternCandidate> RemoveSimilarCandidates(
    const std::vector<PatternCandidate>& candidates, double tau) {
  // Every candidate plays both roles across the O(K^2) comparisons —
  // pattern (shorter side) and haystack (longer side) — so both context
  // kinds are built once per candidate instead of once per pair.
  const std::size_t k = candidates.size();
  std::vector<distance::PatternContext> as_pattern;
  std::vector<distance::SeriesContext> as_haystack;
  as_pattern.reserve(k);
  as_haystack.reserve(k);
  for (const auto& c : candidates) {
    as_pattern.emplace_back(c.values);
    as_haystack.emplace_back(c.values);
  }
  // Same pairwise rule as CandidateDistance, over the prebuilt contexts.
  // Only the `< tau` outcome matters here, so both branches run their
  // tau-bounded variants: the unequal-length side asks the scan for mere
  // existence of a sub-tau window (it stops at the first one instead of
  // hunting for the minimum) and the equal-length distance abandons once
  // its partial sum proves >= tau. Both decide identically to comparing
  // the unbounded distance against tau.
  auto pair_below = [&](std::size_t i, std::size_t j) {
    const std::size_t shorter = candidates[i].values.size() <=
                                        candidates[j].values.size()
                                    ? i
                                    : j;
    const std::size_t longer = shorter == i ? j : i;
    if (candidates[i].values.size() == candidates[j].values.size()) {
      return distance::NormalizedEuclideanBounded(candidates[i].values,
                                                  candidates[j].values,
                                                  tau) < tau;
    }
    return distance::BatchedMatchBelow(as_pattern[shorter],
                                       as_haystack[longer], tau);
  };

  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < k; ++i) {
    bool is_similar = false;
    for (std::size_t& kept_idx : kept) {
      if (pair_below(i, kept_idx)) {
        // Keep whichever occurs more often in its concatenated series.
        if (candidates[kept_idx].frequency < candidates[i].frequency) {
          kept_idx = i;
        }
        is_similar = true;
        break;
      }
    }
    if (!is_similar) kept.push_back(i);
  }
  std::vector<PatternCandidate> out;
  out.reserve(kept.size());
  for (std::size_t idx : kept) out.push_back(candidates[idx]);
  return out;
}

std::vector<RepresentativePattern> FindDistinctPatterns(
    const ts::Dataset& train, const std::vector<PatternCandidate>& candidates,
    const RpmOptions& options) {
  if (candidates.empty()) return {};
  const double tau =
      ComputeSimilarityThreshold(candidates, options.tau_percentile);
  const std::vector<PatternCandidate> pruned =
      RemoveSimilarCandidates(candidates, tau);

  // Transform the training data into candidate-distance features and let
  // CFS pick the discriminative subset.
  const std::vector<RepresentativePattern> all = AsPatterns(pruned);
  const ml::FeatureDataset transformed = TransformDataset(all, train, false);
  const std::vector<std::size_t> selected = ml::CfsSelect(transformed);

  std::vector<RepresentativePattern> out;
  out.reserve(selected.size());
  for (std::size_t idx : selected) out.push_back(all[idx]);
  return out;
}

}  // namespace rpm::core
