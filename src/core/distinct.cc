#include "core/distinct.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/phase_profile.h"
#include "core/transform.h"
#include "distance/euclidean.h"
#include "distance/matcher.h"
#include "ml/feature_selection.h"

namespace rpm::core {

double CandidateDistance(const PatternCandidate& a,
                         const PatternCandidate& b) {
  const ts::Series& shorter = a.values.size() <= b.values.size()
                                  ? a.values
                                  : b.values;
  const ts::Series& longer = a.values.size() <= b.values.size()
                                 ? b.values
                                 : a.values;
  if (shorter.size() == longer.size()) {
    return distance::NormalizedEuclidean(shorter, longer);
  }
  return distance::FindBestMatch(shorter, longer).distance;
}

double ComputeSimilarityThreshold(
    const std::vector<PatternCandidate>& candidates, double percentile) {
  std::vector<double> pooled;
  for (const auto& c : candidates) {
    // Within-cluster distances were measured on full-length members;
    // normalize by sqrt(len) to line up with the closest-match scale.
    const double inv_sqrt_len =
        c.values.empty() ? 1.0
                         : 1.0 / std::sqrt(static_cast<double>(
                                     c.values.size()));
    for (double d : c.within_cluster_distances) {
      pooled.push_back(d * inv_sqrt_len);
    }
  }
  if (pooled.empty()) return 0.0;
  std::sort(pooled.begin(), pooled.end());
  const double rank = std::clamp(percentile, 0.0, 100.0) / 100.0 *
                      static_cast<double>(pooled.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, pooled.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return pooled[lo] * (1.0 - frac) + pooled[hi] * frac;
}

std::vector<PatternCandidate> RemoveSimilarCandidates(
    const std::vector<PatternCandidate>& candidates, double tau) {
  const std::size_t k = candidates.size();
  // Every unequal-length tau test asks one question: does the shorter
  // candidate match inside the longer one strictly below tau? One SoA
  // store over the whole candidate set can answer that for EVERY
  // shorter side at once: a single batched AnyBelow sweep of one
  // candidate decides all pairs it participates in as the longer side,
  // window-major with shared moments. But a sweep pays for a bucket
  // pass over every shorter pattern whether or not the kept-walk below
  // ever asks about it, and the walk's first-hit break means most
  // haystacks are probed far fewer times than a sweep covers (profiled
  // on the Table 2 datasets: candidates cluster so tightly in length
  // that a probe scans ~5 windows, so window-major moment sharing
  // recoups almost nothing per covered pattern). Ski-rental per
  // haystack: probes run as individual first-hit scans until a
  // haystack has been probed as many times as its sweep covers, then
  // one AnyBelow sweep answers everything else it will ever be asked.
  // Probe-light haystacks never pay for coverage they do not read,
  // probe-heavy ones (probes >> shorter patterns) get the batched
  // sweep at less than twice the offline-optimal cost, and each
  // batched decision is identical to the per-pair scan it replaces.
  distance::BatchMatcher matcher;
  for (const auto& c : candidates) matcher.Add(c.values);

  // shorter_than[j]: patterns a sweep of candidate j would cover — the
  // sweep's cost in per-pair-scan units (scaled below).
  std::vector<std::size_t> shorter_than(k, 0);
  {
    std::vector<std::size_t> lengths(k);
    for (std::size_t j = 0; j < k; ++j) {
      lengths[j] = candidates[j].values.size();
    }
    std::vector<std::size_t> sorted = lengths;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t j = 0; j < k; ++j) {
      shorter_than[j] = static_cast<std::size_t>(
          std::lower_bound(sorted.begin(), sorted.end(), lengths[j]) -
          sorted.begin());
    }
  }

  // Lazily built, cached per candidate: series-side context (probe
  // haystack) and sweep flags. The pattern-side contexts live in the
  // matcher — per-pair probes borrow them via matcher.pattern(), so no
  // candidate's context is ever built twice.
  std::vector<std::unique_ptr<distance::SeriesContext>> as_haystack(k);
  std::vector<std::vector<std::uint8_t>> below_of(k);
  std::vector<std::size_t> probes_of(k, 0);
  distance::MatchScratch scratch;

  auto haystack_ctx = [&](std::size_t j) -> const distance::SeriesContext& {
    if (as_haystack[j] == nullptr) {
      as_haystack[j] = std::make_unique<distance::SeriesContext>(
          candidates[j].values);
    }
    return *as_haystack[j];
  };
  auto below_in = [&](std::size_t longer, std::size_t shorter) -> bool {
    std::vector<std::uint8_t>& flags = below_of[longer];
    if (!flags.empty()) return flags[shorter] != 0;
    // Rent until the rents would have bought the sweep outright. The
    // sweep's price is one bucket pass over every shorter pattern plus
    // a fixed per-sweep setup (seed/flag init across the whole store),
    // so the threshold carries a constant on top of shorter_than.
    if (++probes_of[longer] >= shorter_than[longer] + 16) {
      matcher.AnyBelow(haystack_ctx(longer), &scratch, tau, &flags);
      return flags[shorter] != 0;
    }
    return distance::BatchedMatchBelow(matcher.pattern(shorter),
                                       haystack_ctx(longer), tau);
  };

  // Same pairwise rule as CandidateDistance. Only the `< tau` outcome
  // matters here, so both branches run their tau-bounded variants: the
  // unequal-length side asks for mere existence of a sub-tau window
  // (batched or per-pair, the decisions are identical) and the
  // equal-length distance abandons once its partial sum proves >= tau.
  // Both decide identically to comparing the unbounded distance against
  // tau.
  auto pair_below = [&](std::size_t i, std::size_t j) {
    if (candidates[i].values.size() == candidates[j].values.size()) {
      return distance::NormalizedEuclideanBounded(candidates[i].values,
                                                  candidates[j].values,
                                                  tau) < tau;
    }
    const std::size_t longer =
        candidates[i].values.size() > candidates[j].values.size() ? i : j;
    const std::size_t shorter = longer == i ? j : i;
    return below_in(longer, shorter);
  };

  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < k; ++i) {
    bool is_similar = false;
    for (std::size_t& kept_idx : kept) {
      if (pair_below(i, kept_idx)) {
        // Keep whichever occurs more often in its concatenated series.
        if (candidates[kept_idx].frequency < candidates[i].frequency) {
          kept_idx = i;
        }
        is_similar = true;
        break;
      }
    }
    if (!is_similar) kept.push_back(i);
  }
  std::vector<PatternCandidate> out;
  out.reserve(kept.size());
  for (std::size_t idx : kept) out.push_back(candidates[idx]);
  return out;
}

std::vector<RepresentativePattern> FindDistinctPatterns(
    const ts::Dataset& train, const std::vector<PatternCandidate>& candidates,
    const RpmOptions& options) {
  if (candidates.empty()) return {};
  const std::vector<PatternCandidate> pruned = [&] {
    // The tau threshold and the O(K^2) similarity tests are the
    // distinct-selection hot loop; the transform/CFS below accrue to
    // kTransform as usual.
    ScopedPhaseTimer timer(PhaseProfile::kDistinct);
    const double tau =
        ComputeSimilarityThreshold(candidates, options.tau_percentile);
    return RemoveSimilarCandidates(candidates, tau);
  }();

  // Transform the training data into candidate-distance features and let
  // CFS pick the discriminative subset.
  const std::vector<RepresentativePattern> all = AsPatterns(pruned);
  const ml::FeatureDataset transformed = TransformDataset(all, train, false);
  const std::vector<std::size_t> selected = ml::CfsSelect(transformed);

  std::vector<RepresentativePattern> out;
  out.reserve(selected.size());
  for (std::size_t idx : selected) out.push_back(all[idx]);
  return out;
}

}  // namespace rpm::core
