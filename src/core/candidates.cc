#include "core/candidates.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "cluster/hierarchical.h"
#include "core/phase_profile.h"
#include "core/sampling.h"
#include "core/training_cache.h"
#include "grammar/motifs.h"
#include "ts/parallel.h"
#include "ts/resample.h"
#include "ts/znorm.h"

namespace rpm::core {

std::size_t ConcatenatedClass::InstanceAt(std::size_t offset) const {
  return static_cast<std::size_t>(
      std::upper_bound(boundaries.begin(), boundaries.end(), offset) -
      boundaries.begin());
}

ConcatenatedClass ConcatenateClass(const ts::Dataset& train, int label) {
  ConcatenatedClass out;
  out.class_label = label;
  for (const auto& inst : train) {
    if (inst.label != label) continue;
    if (out.num_instances > 0) out.boundaries.push_back(out.values.size());
    out.values.insert(out.values.end(), inst.values.begin(),
                      inst.values.end());
    ++out.num_instances;
  }
  return out;
}

ConcatenatedClass ConcatenateClassSubset(
    const ts::Dataset& train, int label,
    std::span<const std::size_t> indices) {
  ConcatenatedClass out;
  out.class_label = label;
  for (std::size_t i : indices) {
    const auto& inst = train[i];
    if (inst.label != label) continue;
    if (out.num_instances > 0) out.boundaries.push_back(out.values.size());
    out.values.insert(out.values.end(), inst.values.begin(),
                      inst.values.end());
    ++out.num_instances;
  }
  return out;
}

namespace {

// The class series Sequitur discovery runs on: all instances of the
// class, or — past the discovery_sample_per_class cap — a seeded
// uniform subset of them (docs/DATASETS.md, "Sampling semantics").
// Below the cap the un-sampled path runs unchanged, so sampled and full
// training are bit-identical on every suite the cap doesn't bind.
ConcatenatedClass ConcatenateForDiscovery(const ts::Dataset& train, int label,
                                          const RpmOptions& options) {
  const std::size_t cap = options.discovery_sample_per_class;
  if (cap == 0) return ConcatenateClass(train, label);
  const std::vector<std::size_t> members = train.IndicesOfClass(label);
  if (members.size() <= cap) return ConcatenateClass(train, label);
  const std::vector<std::size_t> pick =
      ReservoirSample(members.size(), cap, ClassSeed(options.seed, label));
  std::vector<std::size_t> chosen;
  chosen.reserve(pick.size());
  for (std::size_t p : pick) chosen.push_back(members[p]);
  return ConcatenateClassSubset(train, label, chosen);
}

}  // namespace

std::vector<PatternCandidate> FindClassCandidates(
    const ts::Dataset& train, int label, const sax::SaxOptions& sax_options,
    const RpmOptions& options) {
  std::vector<PatternCandidate> candidates;
  const ConcatenatedClass cls = ConcatenateForDiscovery(train, label, options);
  if (cls.values.size() < sax_options.window || cls.num_instances == 0) {
    return candidates;
  }

  sax::SaxOptions sax = sax_options;
  sax.numerosity_reduction = options.numerosity_reduction;
  // Parameter selection injects a TrainingCache so the discretization of
  // this class series is shared across every SAX combo the search probes;
  // the cached result is bit-identical to the direct call.
  std::shared_ptr<const std::vector<sax::SaxRecord>> cached;
  std::vector<sax::SaxRecord> local;
  {
    ScopedPhaseTimer timer(PhaseProfile::kDiscretization);
    if (options.training_cache != nullptr) {
      cached = options.training_cache->Discretize(cls.values, sax,
                                                  options.num_threads);
    } else {
      local = sax::DiscretizeSlidingWindow(cls.values, sax);
    }
  }
  const std::vector<sax::SaxRecord>& records = cached ? *cached : local;
  std::vector<grammar::MotifCandidate> motifs;
  {
    ScopedPhaseTimer timer(PhaseProfile::kGrammar);
    motifs = grammar::FindMotifCandidates(records, sax.window,
                                          cls.values.size(), cls.boundaries,
                                          options.filter_junctions,
                                          options.gi_algorithm);
  }

  const double min_size_d =
      options.gamma * static_cast<double>(cls.num_instances);
  const auto min_size = static_cast<std::size_t>(
      std::max(2.0, std::ceil(min_size_d)));

  // Motifs are refined independently (resample -> split -> prototype);
  // per-motif slots merged in order keep the output deterministic for any
  // thread count. When FindClassCandidates itself runs inside the
  // per-class parallel region of FindAllCandidates, this nested region
  // executes inline on the owning worker.
  std::vector<std::vector<PatternCandidate>> per_motif(motifs.size());
  ts::ParallelFor(motifs.size(), options.num_threads, [&](std::size_t mi) {
    const grammar::MotifCandidate& motif = motifs[mi];
    // Bring all occurrences to a common (median) length, z-normalized.
    std::vector<std::size_t> lengths;
    lengths.reserve(motif.intervals.size());
    for (const auto& iv : motif.intervals) lengths.push_back(iv.length);
    std::nth_element(lengths.begin(), lengths.begin() + lengths.size() / 2,
                     lengths.end());
    const std::size_t common_len = lengths[lengths.size() / 2];
    if (common_len < 2) return;

    std::vector<ts::Series> members;
    members.reserve(motif.intervals.size());
    for (const auto& iv : motif.intervals) {
      ts::SeriesView raw(cls.values.data() + iv.start, iv.length);
      ts::Series m = ts::ResampleLinear(raw, common_len);
      ts::ZNormalizeInPlace(m);
      members.push_back(std::move(m));
    }

    // Iterative 2-way splitting (30 % rule) into homogeneous groups. The
    // split's pairwise matrix is kept and sliced below: the tau pooling
    // and the medoid prototype read the distances the refinement already
    // measured instead of re-deriving them per group.
    ScopedPhaseTimer timer(PhaseProfile::kClustering);
    const cluster::SplitResult split =
        cluster::IterativeSplitWithMatrix(members, options.split);
    const std::size_t all_n = members.size();

    for (const auto& group : split.groups) {
      if (group.size() < min_size) continue;  // Frequency requirement.
      std::vector<ts::Series> group_members;
      group_members.reserve(group.size());
      std::set<std::size_t> covered;
      for (std::size_t gi : group) {
        group_members.push_back(members[gi]);
        covered.insert(cls.InstanceAt(motif.intervals[gi].start));
      }
      PatternCandidate cand;
      cand.class_label = label;
      cand.rule_id = motif.rule_id;
      cand.frequency = group.size();
      cand.instance_coverage = covered.size();
      const std::size_t n = group_members.size();
      if (options.prototype == ClusterPrototype::kCentroid) {
        cand.values = cluster::Centroid(group_members);
        ts::ZNormalizeInPlace(cand.values);
      } else {
        std::vector<double> sub(n * n);
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            sub[i * n + j] = split.matrix[group[i] * all_n + group[j]];
          }
        }
        cand.values =
            group_members[cluster::MedoidIndexFromMatrix(sub, n)];
      }
      // Pairwise member distances feed the tau threshold (Section 3.2.3).
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          cand.within_cluster_distances.push_back(
              split.matrix[group[i] * all_n + group[j]]);
        }
      }
      per_motif[mi].push_back(std::move(cand));
    }
  });
  for (auto& batch : per_motif) {
    for (auto& cand : batch) candidates.push_back(std::move(cand));
  }
  return candidates;
}

std::vector<PatternCandidate> FindAllCandidates(
    const ts::Dataset& train,
    const std::map<int, sax::SaxOptions>& sax_by_class,
    const RpmOptions& options) {
  const std::vector<int> labels = train.ClassLabels();
  // Per-class slots keep the output order independent of thread count.
  std::vector<std::vector<PatternCandidate>> per_class(labels.size());
  ts::ParallelFor(labels.size(), options.num_threads, [&](std::size_t i) {
    const auto it = sax_by_class.find(labels[i]);
    const sax::SaxOptions& sax =
        it != sax_by_class.end() ? it->second : options.fixed_sax;
    per_class[i] = FindClassCandidates(train, labels[i], sax, options);
  });
  std::vector<PatternCandidate> all;
  for (auto& cls : per_class) {
    for (auto& c : cls) all.push_back(std::move(c));
  }
  return all;
}

}  // namespace rpm::core
