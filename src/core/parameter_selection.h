// SAX parameter selection (Section 4): per-class search for the
// (window, paa, alphabet) triple maximizing the class's F-measure under
// repeated train/validation splits with an inner cross-validation
// (Algorithm 3). Two engines: exhaustive grid (Section 4.1) and DIRECT
// (Section 4.2, the paper's default), both sharing one evaluation cache —
// one combo evaluation yields every class's F-measure at once.

#ifndef RPM_CORE_PARAMETER_SELECTION_H_
#define RPM_CORE_PARAMETER_SELECTION_H_

#include <map>

#include "core/options.h"
#include "sax/sax.h"
#include "ts/series.h"

namespace rpm::core {

/// Integer search box for the three SAX dimensions.
struct SaxParamRange {
  int window_lo = 8;
  int window_hi = 60;
  int paa_lo = 2;
  int paa_hi = 9;
  int alphabet_lo = 3;
  int alphabet_hi = 9;
};

/// Range scaled to the dataset: window spans roughly 1/8 to 3/5 of the
/// shortest training instance.
SaxParamRange DefaultRange(const ts::Dataset& train);

/// Result of the search: per-class SAX options plus the number of distinct
/// combinations evaluated (R in Section 5.3).
struct ParameterSelectionResult {
  std::map<int, sax::SaxOptions> sax_by_class;
  std::size_t combos_evaluated = 0;
};

/// Average per-class F-measure of one combo over `options.param_splits`
/// stratified splits (Algorithm 3 inner loop). An empty candidate pool
/// scores 0 for every class (the pruning rule of Section 4.1).
std::map<int, double> EvaluateSaxCombo(const ts::Dataset& train,
                                       const sax::SaxOptions& sax,
                                       const RpmOptions& options);

/// Algorithm 3 with the engine picked by `options.search` (kFixed returns
/// `options.fixed_sax` for every class without evaluating anything).
ParameterSelectionResult SelectSaxParameters(const ts::Dataset& train,
                                             const RpmOptions& options);

}  // namespace rpm::core

#endif  // RPM_CORE_PARAMETER_SELECTION_H_
