// Value types of the RPM pipeline: candidate and representative patterns.

#ifndef RPM_CORE_PATTERN_H_
#define RPM_CORE_PATTERN_H_

#include <cstddef>
#include <vector>

#include "ts/series.h"

namespace rpm::core {

/// A candidate representative pattern: one refined-cluster prototype
/// (Algorithm 1 output). Values are z-normalized.
struct PatternCandidate {
  int class_label = 0;
  ts::Series values;
  /// Number of occurrences in the class's concatenated series (cluster
  /// size) — the tiebreaker when removing similar candidates (Alg. 2).
  std::size_t frequency = 0;
  /// Number of distinct training instances covered by the occurrences.
  std::size_t instance_coverage = 0;
  /// Grammar rule the cluster came from (diagnostics).
  int rule_id = 0;
  /// Pairwise distances between the cluster's (resampled) members; pooled
  /// across candidates to fix the similarity threshold tau (Section 3.2.3).
  std::vector<double> within_cluster_distances;
};

/// A selected representative pattern (Algorithm 2 output): the feature
/// definition used at classification time.
struct RepresentativePattern {
  int class_label = 0;
  ts::Series values;  // z-normalized
  std::size_t frequency = 0;
};

}  // namespace rpm::core

#endif  // RPM_CORE_PATTERN_H_
