// Cross-combo discretization cache for parameter selection (Section 4).
// DIRECT / grid search probe hundreds of SAX triples against the same
// per-split concatenated class series; without memoization every probe
// repays the full sliding-window discretization. The cache stores the
// three stages of sax::DiscretizeSlidingWindow at their natural sharing
// granularity:
//
//   z-normalized window matrix   keyed (series, window)            —
//       shared by every (paa_size, alphabet) pair at that window
//   PAA row matrix               keyed (series, window, paa)       —
//       shared by every alphabet at that (window, paa)
//   numerosity-reduced records   keyed (series, window, paa, alphabet)
//
// Series are identified by content (length + FNV-1a over the raw bytes
// + boundary values), so callers need no bookkeeping and identical
// class series across calls share entries automatically. Entries are
// evicted LRU once the byte budget is exceeded; values are handed out
// as shared_ptr so eviction never invalidates a borrower. All methods
// are thread-safe: stages are computed outside the lock, so concurrent
// split evaluations never serialize on each other's discretization.
//
// Every lookup path reproduces sax::DiscretizeSlidingWindow bit for bit
// (asserted by training_cache_test).

#ifndef RPM_CORE_TRAINING_CACHE_H_
#define RPM_CORE_TRAINING_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sax/sax.h"
#include "ts/series.h"

namespace rpm::core {

class TrainingCache {
 public:
  /// `max_bytes` bounds the resident payload (matrix + record storage);
  /// least-recently-used entries are dropped once it is exceeded.
  explicit TrainingCache(std::size_t max_bytes = std::size_t{256} << 20)
      : max_bytes_(max_bytes) {}

  TrainingCache(const TrainingCache&) = delete;
  TrainingCache& operator=(const TrainingCache&) = delete;

  /// Drop-in replacement for sax::DiscretizeSlidingWindow that memoizes
  /// all three stages. `num_threads` parallelizes stage computation on
  /// cache misses (results are identical for any value).
  std::shared_ptr<const std::vector<sax::SaxRecord>> Discretize(
      ts::SeriesView series, const sax::SaxOptions& options,
      std::size_t num_threads = 1);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

  void Clear();

 private:
  struct Key {
    std::uint64_t series = 0;  ///< content fingerprint of the series
    std::uint32_t window = 0;
    std::uint32_t paa = 0;       ///< 0 for the window-matrix stage
    std::uint32_t alphabet = 0;  ///< 0 below the records stage
    std::uint32_t flags = 0;     ///< bit0 znormalize, bit1 numerosity

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    std::list<Key>::iterator lru;
  };

  std::shared_ptr<const void> Find(const Key& key);
  void Insert(const Key& key, std::shared_ptr<const void> value,
              std::size_t bytes);

  const std::size_t max_bytes_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::list<Key> lru_;  ///< front = most recent
  std::size_t bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace rpm::core

#endif  // RPM_CORE_TRAINING_CACHE_H_
