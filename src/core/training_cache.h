// Cross-combo discretization cache for parameter selection (Section 4).
// DIRECT / grid search probe hundreds of SAX triples against the same
// per-split concatenated class series; without memoization every probe
// repays the full sliding-window discretization. The cache stores the
// three stages of sax::DiscretizeSlidingWindow at their natural sharing
// granularity:
//
//   z-normalized window matrix   keyed (series, window)            —
//       shared by every (paa_size, alphabet) pair at that window
//   PAA row matrix               keyed (series, window, paa)       —
//       shared by every alphabet at that (window, paa)
//   numerosity-reduced records   keyed (series, window, paa, alphabet)
//
// Series are identified by content (length + FNV-1a over the raw bytes
// + boundary values), so callers need no bookkeeping and identical
// class series across calls share entries automatically. Entries are
// evicted LRU once the byte budget is exceeded; values are handed out
// as shared_ptr so eviction never invalidates a borrower.
//
// The cache is sharded: keys hash onto `shards` independent
// (mutex, map, LRU list) slices, each owning max_bytes/shards of the
// budget, so concurrent split evaluations racing on different keys
// never convoy on one lock (the cross-shard lock convoy the
// archive-scale PR removed). Stages are still computed outside any
// lock. Sharding is invisible to callers beyond stats(): results are
// bit-identical for any shard count, budgets permitting.
//
// Every lookup path reproduces sax::DiscretizeSlidingWindow bit for bit
// (asserted by training_cache_test).

#ifndef RPM_CORE_TRAINING_CACHE_H_
#define RPM_CORE_TRAINING_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sax/sax.h"
#include "ts/series.h"

namespace rpm::core {

class TrainingCache {
 public:
  /// `max_bytes` bounds the resident payload (matrix + record storage)
  /// across all shards; least-recently-used entries are dropped from a
  /// shard once its max_bytes/shards slice is exceeded. `shards` == 0
  /// picks the default (kDefaultShards).
  explicit TrainingCache(std::size_t max_bytes = std::size_t{256} << 20,
                         std::size_t shards = 0);

  TrainingCache(const TrainingCache&) = delete;
  TrainingCache& operator=(const TrainingCache&) = delete;

  static constexpr std::size_t kDefaultShards = 8;

  /// Drop-in replacement for sax::DiscretizeSlidingWindow that memoizes
  /// all three stages. `num_threads` parallelizes stage computation on
  /// cache misses (results are identical for any value).
  std::shared_ptr<const std::vector<sax::SaxRecord>> Discretize(
      ts::SeriesView series, const sax::SaxOptions& options,
      std::size_t num_threads = 1);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };
  /// Aggregate over every shard.
  Stats stats() const;

  /// One shard's slice of the stats (i < num_shards()).
  Stats shard_stats(std::size_t i) const;

  std::size_t num_shards() const { return shards_.size(); }

  void Clear();

 private:
  struct Key {
    std::uint64_t series = 0;  ///< content fingerprint of the series
    std::uint32_t window = 0;
    std::uint32_t paa = 0;       ///< 0 for the window-matrix stage
    std::uint32_t alphabet = 0;  ///< 0 below the records stage
    std::uint32_t flags = 0;     ///< bit0 znormalize, bit1 numerosity

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    std::list<Key>::iterator lru;
  };

  /// One independent (budget, lock, map, LRU) slice of the cache.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> entries;
    std::list<Key> lru;  ///< front = most recent
    std::size_t bytes = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
  };

  Shard& ShardFor(const Key& key);
  std::shared_ptr<const void> Find(const Key& key);
  void Insert(const Key& key, std::shared_ptr<const void> value,
              std::size_t bytes);

  std::size_t shard_max_bytes_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rpm::core

#endif  // RPM_CORE_TRAINING_CACHE_H_
