#include "core/parameter_selection.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <mutex>

#include "core/candidates.h"
#include "core/phase_profile.h"
#include "core/training_cache.h"
#include "core/distinct.h"
#include "core/transform.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"
#include "ml/svm.h"
#include "opt/direct.h"
#include "opt/grid.h"
#include "ts/parallel.h"
#include "ts/rng.h"

namespace rpm::core {

SaxParamRange DefaultRange(const ts::Dataset& train) {
  SaxParamRange r;
  const auto min_len = static_cast<int>(train.MinLength());
  r.window_lo = std::max(5, min_len / 8);
  r.window_hi = std::max(r.window_lo + 1, min_len * 3 / 5);
  r.paa_lo = 2;
  r.paa_hi = std::min(9, std::max(3, r.window_lo));
  r.alphabet_lo = 3;
  r.alphabet_hi = 9;
  return r;
}

namespace {

// Clamps a raw integer triple into a valid SaxOptions.
sax::SaxOptions MakeSax(int window, int paa, int alphabet,
                        const SaxParamRange& range) {
  sax::SaxOptions s;
  s.window = static_cast<std::size_t>(
      std::clamp(window, range.window_lo, range.window_hi));
  s.paa_size = static_cast<std::size_t>(std::clamp(
      paa, range.paa_lo, std::min(range.paa_hi, static_cast<int>(s.window))));
  s.alphabet = std::clamp(alphabet, range.alphabet_lo, range.alphabet_hi);
  return s;
}

// Evaluation shared by both engines, memoized on the integer triple.
// Evaluate() is thread-safe (first writer of a triple wins), so the grid
// pre-warm below can shard combos across the pool while the sequential
// search still reads one coherent memo.
class ComboEvaluator {
 public:
  ComboEvaluator(const ts::Dataset& train, const RpmOptions& options)
      : train_(train),
        options_(options),
        discretization_cache_(
            options.training_cache_bytes > 0
                ? std::make_unique<TrainingCache>(
                      options.training_cache_bytes,
                      options.training_cache_shards != 0
                          ? options.training_cache_shards
                          : std::max(TrainingCache::kDefaultShards,
                                     options.num_threads))
                : nullptr) {
    // Fixed splits reused across combos keep comparisons apples-to-apples.
    ts::Rng rng(options.seed);
    for (std::size_t s = 0; s < std::max<std::size_t>(1, options.param_splits);
         ++s) {
      splits_.push_back(
          ml::SplitDataset(train, options.param_train_fraction, rng));
    }
  }

  const std::map<int, double>& Evaluate(const sax::SaxOptions& sax) {
    const std::array<int, 3> key = {static_cast<int>(sax.window),
                                    static_cast<int>(sax.paa_size),
                                    sax.alphabet};
    {
      std::lock_guard<std::mutex> lock(memo_mu_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    // Compute outside the lock; losing a race just discards a duplicate
    // (identical) result. Map nodes are stable, so the returned reference
    // outlives later insertions.
    std::map<int, double> f = EvaluateUncached(sax);
    std::lock_guard<std::mutex> lock(memo_mu_);
    return cache_.emplace(key, std::move(f)).first->second;
  }

  std::size_t combos_evaluated() const {
    std::lock_guard<std::mutex> lock(memo_mu_);
    return cache_.size();
  }

 private:
  std::map<int, double> EvaluateUncached(const sax::SaxOptions& sax) const {
    std::map<int, double> f_sum;
    const std::vector<int> labels = train_.ClassLabels();
    for (int label : labels) f_sum[label] = 0.0;

    // The splits are independent; evaluate them on the persistent pool
    // and merge in order (deterministic for any thread count). DIRECT /
    // grid search evaluates hundreds of combos per run, so reusing pool
    // workers here is what keeps thread churn out of the hot path.
    std::vector<std::map<int, double>> split_scores(splits_.size());
    ts::ParallelFor(splits_.size(), options_.num_threads, [&](std::size_t s) {
      split_scores[s] = EvaluateSplit(sax, s);
    });
    for (const auto& scores : split_scores) {
      for (const auto& [label, f1] : scores) {
        if (f_sum.count(label) > 0) f_sum[label] += f1;
      }
    }
    const double inv = 1.0 / static_cast<double>(splits_.size());
    for (auto& [label, f] : f_sum) f *= inv;
    return f_sum;
  }

  // One split's per-class F1 under `sax` (Alg. 3 lines 7-12). Returns an
  // empty map when the combo is pruned (no candidates / patterns).
  std::map<int, double> EvaluateSplit(const sax::SaxOptions& sax,
                                      std::size_t s) const {
    const std::vector<int> labels = train_.ClassLabels();
    const auto& [sub_train, validation] = splits_[s];
    std::map<int, sax::SaxOptions> sax_by_class;
    for (int label : labels) sax_by_class[label] = sax;
    // Candidate mining inside a parallel split stays single-threaded:
    // the split level is the unit of parallelism here (nested regions
    // would run inline on the pool anyway, so this is also explicit).
    // The shared discretization cache persists across every combo this
    // evaluator probes — each split's class series discretizes once per
    // (window, paa, alphabet) layer instead of once per probe.
    RpmOptions inner = options_;
    inner.num_threads = 1;
    inner.training_cache = discretization_cache_.get();
    const std::vector<PatternCandidate> candidates =
        FindAllCandidates(sub_train, sax_by_class, inner);
    if (candidates.empty()) return {};  // Pruned: contributes 0.
    const std::vector<RepresentativePattern> patterns =
        FindDistinctPatterns(sub_train, candidates, inner);
    if (patterns.empty()) return {};

    const ml::FeatureDataset tv =
        TransformDataset(patterns, validation, false);
    if (tv.empty()) return {};

    // k-fold CV on the transformed validation data (Alg. 3 line 12).
    ts::Rng fold_rng(options_.seed + 101 * (s + 1));
    const std::size_t k =
        std::min<std::size_t>(std::max<std::size_t>(2, options_.param_folds),
                              tv.size());
    const std::vector<int> folds = ml::StratifiedFolds(tv.y, k, fold_rng);
    std::vector<int> predicted(tv.size(), 0);
    ScopedPhaseTimer timer(PhaseProfile::kSvm);
    for (std::size_t fold = 0; fold < k; ++fold) {
      std::vector<std::size_t> tr;
      std::vector<std::size_t> te;
      for (std::size_t i = 0; i < tv.size(); ++i) {
        (folds[i] == static_cast<int>(fold) ? te : tr).push_back(i);
      }
      if (tr.empty() || te.empty()) continue;
      ml::SvmClassifier svm(options_.svm);
      svm.Train(tv.SelectRows(tr));
      for (std::size_t i : te) predicted[i] = svm.Predict(tv.x[i]);
    }
    std::map<int, double> out;
    for (const auto& [label, score] : ml::PerClassScores(predicted, tv.y)) {
      out[label] = score.f1;
    }
    return out;
  }

  const ts::Dataset& train_;
  const RpmOptions& options_;
  /// Discretization artifacts shared across combos (null when disabled).
  /// TrainingCache is internally synchronized, so the concurrent split
  /// evaluations share it safely.
  std::unique_ptr<TrainingCache> discretization_cache_;
  std::vector<std::pair<ts::Dataset, ts::Dataset>> splits_;
  mutable std::mutex memo_mu_;
  std::map<std::array<int, 3>, std::map<int, double>> cache_;
};

}  // namespace

std::map<int, double> EvaluateSaxCombo(const ts::Dataset& train,
                                       const sax::SaxOptions& sax,
                                       const RpmOptions& options) {
  ComboEvaluator evaluator(train, options);
  return evaluator.Evaluate(sax);
}

ParameterSelectionResult SelectSaxParameters(const ts::Dataset& train,
                                             const RpmOptions& options) {
  ParameterSelectionResult result;
  const std::vector<int> labels = train.ClassLabels();
  if (options.search == ParameterSearch::kFixed) {
    for (int label : labels) result.sax_by_class[label] = options.fixed_sax;
    return result;
  }

  const SaxParamRange range = DefaultRange(train);
  ComboEvaluator evaluator(train, options);
  std::map<int, double> best_f;
  std::map<int, sax::SaxOptions> best_sax;
  for (int label : labels) {
    best_f[label] = -1.0;
    best_sax[label] = MakeSax(range.window_lo, range.paa_lo,
                              range.alphabet_lo, range);
  }
  auto consider = [&](const sax::SaxOptions& sax) {
    const auto& f = evaluator.Evaluate(sax);
    for (const auto& [label, value] : f) {
      if (value > best_f[label]) {
        best_f[label] = value;
        best_sax[label] = sax;
      }
    }
  };

  if (options.search == ParameterSearch::kGrid) {
    std::vector<opt::IntRange> ranges = {
        {range.window_lo, range.window_hi,
         std::max(1, options.grid_window_step)},
        {range.paa_lo, range.paa_hi, 2},
        {range.alphabet_lo, range.alphabet_hi, 2}};
    // Shard the lattice across the pool to warm the evaluator's memo;
    // the sequential exhaustive search below then reads pure cache hits.
    // Selection stays bit-identical to the sequential run because
    // Evaluate memoizes one deterministic result per triple and the
    // minimizer scan order is unchanged.
    std::vector<std::array<int, 3>> lattice;
    for (int w = ranges[0].lo; w <= ranges[0].hi; w += ranges[0].step) {
      for (int p = ranges[1].lo; p <= ranges[1].hi; p += ranges[1].step) {
        for (int a = ranges[2].lo; a <= ranges[2].hi; a += ranges[2].step) {
          lattice.push_back({w, p, a});
        }
      }
    }
    ts::ParallelFor(lattice.size(), options.num_threads, [&](std::size_t i) {
      evaluator.Evaluate(
          MakeSax(lattice[i][0], lattice[i][1], lattice[i][2], range));
    });
    opt::GridSearchMin(
        [&](std::span<const int> p) {
          const sax::SaxOptions sax = MakeSax(p[0], p[1], p[2], range);
          consider(sax);
          // Grid minimizes a scalar; use the mean class error so the
          // engine has something coherent to report.
          const auto& f = evaluator.Evaluate(sax);
          double mean = 0.0;
          for (const auto& [label, v] : f) mean += v;
          return 1.0 - mean / static_cast<double>(f.size());
        },
        ranges);
  } else {  // kDirect: one 3-D search per class, shared cache.
    opt::Bounds bounds;
    bounds.lower = {static_cast<double>(range.window_lo),
                    static_cast<double>(range.paa_lo),
                    static_cast<double>(range.alphabet_lo)};
    bounds.upper = {static_cast<double>(range.window_hi),
                    static_cast<double>(range.paa_hi),
                    static_cast<double>(range.alphabet_hi)};
    opt::DirectOptions direct_options;
    direct_options.max_evaluations = options.direct_max_evaluations;
    for (int label : labels) {
      opt::Minimize(
          [&](std::span<const double> x) {
            const sax::SaxOptions sax =
                MakeSax(static_cast<int>(std::lround(x[0])),
                        static_cast<int>(std::lround(x[1])),
                        static_cast<int>(std::lround(x[2])), range);
            consider(sax);
            const auto& f = evaluator.Evaluate(sax);
            const auto it = f.find(label);
            return 1.0 - (it != f.end() ? it->second : 0.0);
          },
          bounds, direct_options);
    }
  }

  result.sax_by_class = std::move(best_sax);
  result.combos_evaluated = evaluator.combos_evaluated();
  return result;
}

}  // namespace rpm::core
