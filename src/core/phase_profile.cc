#include "core/phase_profile.h"

#include <atomic>
#include <cstdint>

namespace rpm::core {
namespace {

std::atomic<bool> g_enabled{false};

// Nanosecond counters: integer fetch_add keeps accumulation lock-free and
// exact under concurrent workers (atomic<double> addition would need a
// CAS loop and is not available pre-C++20 fetch_add anyway).
std::array<std::atomic<std::int64_t>, PhaseProfile::kNumPhases> g_nanos{};

constexpr const char* kNames[PhaseProfile::kNumPhases] = {
    "discretization", "grammar", "clustering", "selection",
    "transform",      "svm",     "distinct",   "shapelets"};

constexpr const char* kSpanNames[PhaseProfile::kNumPhases] = {
    "train.discretization", "train.grammar",    "train.clustering",
    "train.selection",      "train.transform",  "train.svm",
    "train.distinct",       "train.shapelets"};

}  // namespace

void PhaseProfile::Enable(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool PhaseProfile::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void PhaseProfile::Reset() {
  for (auto& n : g_nanos) n.store(0, std::memory_order_relaxed);
}

void PhaseProfile::Add(Phase phase, double seconds) {
  if (!enabled()) return;
  const auto nanos = static_cast<std::int64_t>(seconds * 1e9);
  g_nanos[phase].fetch_add(nanos, std::memory_order_relaxed);
}

std::array<double, PhaseProfile::kNumPhases> PhaseProfile::Totals() {
  std::array<double, kNumPhases> out{};
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    out[i] =
        static_cast<double>(g_nanos[i].load(std::memory_order_relaxed)) *
        1e-9;
  }
  return out;
}

const char* PhaseProfile::Name(Phase phase) { return kNames[phase]; }

const char* PhaseProfile::SpanName(Phase phase) { return kSpanNames[phase]; }

}  // namespace rpm::core
