// Algorithm 2 (FindDistinct): prune the candidate pool down to the
// representative patterns. Two stages: (1) remove near-duplicate
// candidates — closest-match distance under the tau threshold, keeping the
// more frequent one; (2) transform the training set into candidate-distance
// features and run correlation-based feature selection; the surviving
// features *are* the representative patterns.

#ifndef RPM_CORE_DISTINCT_H_
#define RPM_CORE_DISTINCT_H_

#include <vector>

#include "core/options.h"
#include "core/pattern.h"
#include "ts/series.h"

namespace rpm::core {

/// Distance between two candidates of possibly different lengths: the
/// shorter one's best match inside the longer (Alg. 2 line 9).
double CandidateDistance(const PatternCandidate& a,
                         const PatternCandidate& b);

/// The tau threshold: `percentile`-th percentile of the pooled
/// within-cluster pairwise distances of `candidates` (Section 3.2.3).
/// Returns 0 when no distances are available (every candidate kept).
double ComputeSimilarityThreshold(
    const std::vector<PatternCandidate>& candidates, double percentile);

/// Stage 1: drop near-duplicates (distance < tau keeps the more frequent).
std::vector<PatternCandidate> RemoveSimilarCandidates(
    const std::vector<PatternCandidate>& candidates, double tau);

/// Full Algorithm 2: returns the selected representative patterns.
/// `train` is the complete training set (all classes).
std::vector<RepresentativePattern> FindDistinctPatterns(
    const ts::Dataset& train, const std::vector<PatternCandidate>& candidates,
    const RpmOptions& options);

}  // namespace rpm::core

#endif  // RPM_CORE_DISTINCT_H_
