// Deterministic dataset sampling for archive-scale training
// (docs/DATASETS.md, "Sampling semantics"). Two primitives:
//
//   ReservoirSample   Vitter's Algorithm R over [0, population) — a
//                     uniform k-subset, independent of value content.
//   StratifiedSample  one reservoir per class label, so every class
//                     keeps (up to) `per_class` members regardless of
//                     imbalance.
//
// Both are seeded, return indices sorted ascending (so a sampled subset
// preserves dataset order, and a cap >= the population returns the
// identity — the property the sampled-vs-full exactness tests pin), and
// are deterministic across platforms for a given (population, k, seed).
// The candidate-discovery path (core/candidates.cc) applies
// ReservoirSample per class in front of Sequitur when
// RpmOptions::discovery_sample_per_class is set; RpmClassifier's
// DatasetReader overload applies either primitive to the on-disk label
// column before materializing anything.

#ifndef RPM_CORE_SAMPLING_H_
#define RPM_CORE_SAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rpm::core {

/// Uniform k-subset of {0, ..., population-1}, sorted ascending.
/// k >= population returns the identity permutation's index set.
std::vector<std::size_t> ReservoirSample(std::size_t population,
                                         std::size_t k, std::uint64_t seed);

/// Per-class reservoir over a label column: at most `per_class` indices
/// of every distinct label, merged and sorted ascending. Each class
/// draws from an independent label-derived substream of `seed`, so the
/// subset a class receives does not depend on which other classes are
/// present. per_class == 0 selects everything.
std::vector<std::size_t> StratifiedSample(std::span<const int> labels,
                                          std::size_t per_class,
                                          std::uint64_t seed);

/// Label-aware seed derivation used by the per-class discovery sampling
/// (splitmix64 finalizer over seed ^ label); exposed so tests can pin
/// the exact subsequence a class sees.
std::uint64_t ClassSeed(std::uint64_t seed, int label);

}  // namespace rpm::core

#endif  // RPM_CORE_SAMPLING_H_
