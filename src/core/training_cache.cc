#include "core/training_cache.h"

#include <cstring>

namespace rpm::core {
namespace {

// FNV-1a over the raw series bytes. Doubles are compared by value
// elsewhere in the pipeline, so fingerprinting their representations is
// exactly as discriminating; the length and endpoints are folded in to
// keep accidental collisions out of reach.
std::uint64_t Fingerprint(ts::SeriesView series) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  const std::uint64_t len = series.size();
  mix(&len, sizeof(len));
  if (!series.empty()) {
    mix(series.data(), series.size() * sizeof(double));
    mix(&series.front(), sizeof(double));
    mix(&series.back(), sizeof(double));
  }
  return h;
}

std::size_t RecordsBytes(const std::vector<sax::SaxRecord>& records) {
  std::size_t bytes = records.capacity() * sizeof(sax::SaxRecord);
  for (const auto& r : records) bytes += r.word.capacity();
  return bytes;
}

}  // namespace

std::size_t TrainingCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = k.series;
  h ^= (std::uint64_t{k.window} << 32) | k.paa;
  h *= 0x9e3779b97f4a7c15ull;
  h ^= (std::uint64_t{k.alphabet} << 32) | k.flags;
  h *= 0x9e3779b97f4a7c15ull;
  return static_cast<std::size_t>(h ^ (h >> 32));
}

std::shared_ptr<const void> TrainingCache::Find(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.value;
}

void TrainingCache::Insert(const Key& key, std::shared_ptr<const void> value,
                           std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(key) > 0) return;  // Lost a compute race; keep first.
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(value), bytes, lru_.begin()});
  bytes_ += bytes;
  while (bytes_ > max_bytes_ && entries_.size() > 1) {
    // Never evict what was just inserted: the caller still needs it, and
    // an over-budget singleton would otherwise thrash forever.
    const Key victim = lru_.back();
    if (victim == key) break;
    auto vit = entries_.find(victim);
    bytes_ -= vit->second.bytes;
    entries_.erase(vit);
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const std::vector<sax::SaxRecord>> TrainingCache::Discretize(
    ts::SeriesView series, const sax::SaxOptions& options,
    std::size_t num_threads) {
  const std::uint64_t fp = Fingerprint(series);
  const std::uint32_t flags =
      (options.znormalize ? 1u : 0u) |
      (options.numerosity_reduction ? 2u : 0u);
  const auto window = static_cast<std::uint32_t>(options.window);
  const auto paa = static_cast<std::uint32_t>(options.paa_size);
  const auto alphabet = static_cast<std::uint32_t>(options.alphabet);

  const Key records_key{fp, window, paa, alphabet, flags};
  if (auto hit = Find(records_key)) {
    return std::static_pointer_cast<const std::vector<sax::SaxRecord>>(hit);
  }

  // Records miss: fetch or build the PAA rows (numerosity / alphabet do
  // not influence the lower stages, so their key fields stay 0).
  const Key paa_key{fp, window, paa, 0, flags & 1u};
  auto paa_rows =
      std::static_pointer_cast<const sax::PaaMatrix>(Find(paa_key));
  if (paa_rows == nullptr) {
    const Key windows_key{fp, window, 0, 0, flags & 1u};
    auto windows =
        std::static_pointer_cast<const sax::WindowMatrix>(Find(windows_key));
    if (windows == nullptr) {
      windows = std::make_shared<const sax::WindowMatrix>(
          sax::SlidingWindows(series, options.window, options.znormalize,
                              num_threads));
      Insert(windows_key, windows,
             windows->data.capacity() * sizeof(double));
    }
    paa_rows = std::make_shared<const sax::PaaMatrix>(
        sax::PaaRows(*windows, options.paa_size, num_threads));
    Insert(paa_key, paa_rows, paa_rows->data.capacity() * sizeof(double));
  }

  auto records = std::make_shared<const std::vector<sax::SaxRecord>>(
      sax::RecordsFromPaa(*paa_rows, options.alphabet,
                          options.numerosity_reduction));
  Insert(records_key, records, RecordsBytes(*records));
  return records;
}

TrainingCache::Stats TrainingCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.bytes = bytes_;
  s.entries = entries_.size();
  return s;
}

void TrainingCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

}  // namespace rpm::core
