#include "core/training_cache.h"

#include <algorithm>
#include <cstring>

namespace rpm::core {
namespace {

// FNV-1a over the raw series bytes. Doubles are compared by value
// elsewhere in the pipeline, so fingerprinting their representations is
// exactly as discriminating; the length and endpoints are folded in to
// keep accidental collisions out of reach.
std::uint64_t Fingerprint(ts::SeriesView series) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  const std::uint64_t len = series.size();
  mix(&len, sizeof(len));
  if (!series.empty()) {
    mix(series.data(), series.size() * sizeof(double));
    mix(&series.front(), sizeof(double));
    mix(&series.back(), sizeof(double));
  }
  return h;
}

std::size_t RecordsBytes(const std::vector<sax::SaxRecord>& records) {
  std::size_t bytes = records.capacity() * sizeof(sax::SaxRecord);
  for (const auto& r : records) bytes += r.word.capacity();
  return bytes;
}

}  // namespace

std::size_t TrainingCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = k.series;
  h ^= (std::uint64_t{k.window} << 32) | k.paa;
  h *= 0x9e3779b97f4a7c15ull;
  h ^= (std::uint64_t{k.alphabet} << 32) | k.flags;
  h *= 0x9e3779b97f4a7c15ull;
  return static_cast<std::size_t>(h ^ (h >> 32));
}

TrainingCache::TrainingCache(std::size_t max_bytes, std::size_t shards) {
  if (shards == 0) shards = kDefaultShards;
  shard_max_bytes_ = std::max<std::size_t>(1, max_bytes / shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

TrainingCache::Shard& TrainingCache::ShardFor(const Key& key) {
  // KeyHash mixes all fields; fold the upper bits so the shard pick and
  // the map's bucket pick inside the shard use different bit ranges.
  const std::size_t h = KeyHash{}(key);
  return *shards_[(h >> 8) % shards_.size()];
}

std::shared_ptr<const void> TrainingCache::Find(const Key& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
  return it->second.value;
}

void TrainingCache::Insert(const Key& key, std::shared_ptr<const void> value,
                           std::size_t bytes) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.count(key) > 0) return;  // Lost a compute race.
  shard.lru.push_front(key);
  shard.entries.emplace(key, Entry{std::move(value), bytes,
                                   shard.lru.begin()});
  shard.bytes += bytes;
  while (shard.bytes > shard_max_bytes_ && shard.entries.size() > 1) {
    // Never evict what was just inserted: the caller still needs it, and
    // an over-budget singleton would otherwise thrash forever.
    const Key victim = shard.lru.back();
    if (victim == key) break;
    auto vit = shard.entries.find(victim);
    shard.bytes -= vit->second.bytes;
    shard.entries.erase(vit);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

std::shared_ptr<const std::vector<sax::SaxRecord>> TrainingCache::Discretize(
    ts::SeriesView series, const sax::SaxOptions& options,
    std::size_t num_threads) {
  const std::uint64_t fp = Fingerprint(series);
  const std::uint32_t flags =
      (options.znormalize ? 1u : 0u) |
      (options.numerosity_reduction ? 2u : 0u);
  const auto window = static_cast<std::uint32_t>(options.window);
  const auto paa = static_cast<std::uint32_t>(options.paa_size);
  const auto alphabet = static_cast<std::uint32_t>(options.alphabet);

  const Key records_key{fp, window, paa, alphabet, flags};
  if (auto hit = Find(records_key)) {
    return std::static_pointer_cast<const std::vector<sax::SaxRecord>>(hit);
  }

  // Records miss: fetch or build the PAA rows (numerosity / alphabet do
  // not influence the lower stages, so their key fields stay 0).
  const Key paa_key{fp, window, paa, 0, flags & 1u};
  auto paa_rows =
      std::static_pointer_cast<const sax::PaaMatrix>(Find(paa_key));
  if (paa_rows == nullptr) {
    const Key windows_key{fp, window, 0, 0, flags & 1u};
    auto windows =
        std::static_pointer_cast<const sax::WindowMatrix>(Find(windows_key));
    if (windows == nullptr) {
      windows = std::make_shared<const sax::WindowMatrix>(
          sax::SlidingWindows(series, options.window, options.znormalize,
                              num_threads));
      Insert(windows_key, windows,
             windows->data.capacity() * sizeof(double));
    }
    paa_rows = std::make_shared<const sax::PaaMatrix>(
        sax::PaaRows(*windows, options.paa_size, num_threads));
    Insert(paa_key, paa_rows, paa_rows->data.capacity() * sizeof(double));
  }

  auto records = std::make_shared<const std::vector<sax::SaxRecord>>(
      sax::RecordsFromPaa(*paa_rows, options.alphabet,
                          options.numerosity_reduction));
  Insert(records_key, records, RecordsBytes(*records));
  return records;
}

TrainingCache::Stats TrainingCache::stats() const {
  Stats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.evictions += shard->evictions;
    s.bytes += shard->bytes;
    s.entries += shard->entries.size();
  }
  return s;
}

TrainingCache::Stats TrainingCache::shard_stats(std::size_t i) const {
  const Shard& shard = *shards_.at(i);
  std::lock_guard<std::mutex> lock(shard.mu);
  Stats s;
  s.hits = shard.hits;
  s.misses = shard.misses;
  s.evictions = shard.evictions;
  s.bytes = shard.bytes;
  s.entries = shard.entries.size();
  return s;
}

void TrainingCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

}  // namespace rpm::core
