// Algorithm 1 (FindCandidates): per class, concatenate the training
// instances, discretize with SAX over a sliding window, infer a Sequitur
// grammar, map each repeated rule back to raw variable-length
// subsequences, refine them by iterative complete-linkage splitting, and
// emit the prototype of every cluster that is frequent enough
// (size >= gamma * |class|).

#ifndef RPM_CORE_CANDIDATES_H_
#define RPM_CORE_CANDIDATES_H_

#include <map>
#include <span>
#include <vector>

#include "core/options.h"
#include "core/pattern.h"
#include "sax/sax.h"
#include "ts/series.h"

namespace rpm::core {

/// The concatenation of one class's training instances plus the
/// bookkeeping needed to avoid junction artifacts.
struct ConcatenatedClass {
  int class_label = 0;
  ts::Series values;
  /// Start offset of each instance after the first (sorted).
  std::vector<std::size_t> boundaries;
  /// Instance index owning each offset — computed from boundaries.
  std::size_t InstanceAt(std::size_t offset) const;
  std::size_t num_instances = 0;
};

/// Concatenates all instances of `label` in order.
ConcatenatedClass ConcatenateClass(const ts::Dataset& train, int label);

/// Concatenates the instances at `indices` (ascending positions into
/// `train`, all carrying `label`) in order. With every index of the
/// class present this is byte-identical to ConcatenateClass — the
/// invariant behind the sampled-vs-full exactness guarantee.
ConcatenatedClass ConcatenateClassSubset(const ts::Dataset& train, int label,
                                         std::span<const std::size_t> indices);

/// Runs Algorithm 1 for one class with the given SAX parameters.
/// Returns the candidate pool (possibly empty when nothing repeats often
/// enough — Algorithm 3 uses emptiness to prune parameter combinations).
std::vector<PatternCandidate> FindClassCandidates(
    const ts::Dataset& train, int label, const sax::SaxOptions& sax_options,
    const RpmOptions& options);

/// Runs Algorithm 1 for every class with per-class SAX parameters.
/// `sax_by_class` must contain an entry per class label in `train`.
std::vector<PatternCandidate> FindAllCandidates(
    const ts::Dataset& train,
    const std::map<int, sax::SaxOptions>& sax_by_class,
    const RpmOptions& options);

}  // namespace rpm::core

#endif  // RPM_CORE_CANDIDATES_H_
