// The end-to-end RPM classifier (the paper's contribution): learn the
// representative patterns from the training data (Algorithms 1-3), embed
// series into the pattern-distance feature space, and classify with an
// SVM. This is the main public entry point of the library.

#ifndef RPM_CORE_CLASSIFIER_H_
#define RPM_CORE_CLASSIFIER_H_

#include <map>
#include <optional>
#include <span>
#include <vector>

#include <iosfwd>
#include <memory>
#include <string>

#include "core/options.h"
#include "core/parameter_selection.h"
#include "core/pattern.h"
#include "core/transform.h"
#include "ml/simple_classifiers.h"
#include "ts/series.h"

namespace rpm::ts {
class DatasetReader;
}  // namespace rpm::ts

namespace rpm::core {

/// Caps applied when training straight off an on-disk RPMD archive
/// (ts/dataset_io.h); see docs/DATASETS.md, "Sampling semantics".
struct TrainFromDiskOptions {
  /// Per-class cap on the instances materialized from the archive: past
  /// it a stratified reservoir sample (seeded from RpmOptions::seed) is
  /// read instead of the full class. 0 — or a cap at or above every
  /// class size — materializes everything, making disk training
  /// bit-identical to Train(reader.ReadAll()).
  std::size_t max_train_per_class = 0;
};

/// Per-stage training diagnostics, populated by Train.
struct TrainingReport {
  double parameter_selection_seconds = 0.0;
  double candidate_mining_seconds = 0.0;
  double pattern_selection_seconds = 0.0;
  double classifier_fit_seconds = 0.0;
  std::size_t candidates_total = 0;
  std::size_t patterns_selected = 0;
  std::size_t combos_evaluated = 0;
  std::map<int, std::size_t> candidates_per_class;

  double total_seconds() const {
    return parameter_selection_seconds + candidate_mining_seconds +
           pattern_selection_seconds + classifier_fit_seconds;
  }
};

class RpmClassifier {
 public:
  explicit RpmClassifier(RpmOptions options = {}) : options_(options) {}

  /// Learns SAX parameters (per `options.search`), mines the
  /// representative patterns, and fits the SVM on the transformed
  /// training data. Degenerate inputs (no minable patterns) fall back to
  /// a majority-class model so Classify never fails.
  void Train(const ts::Dataset& train);

  /// Archive-scale variant: trains off an mmap-backed RPMD reader. Only
  /// the label column is scanned to pick the (possibly capped) training
  /// subset — value pages are touched solely for the series actually
  /// materialized — so peak memory tracks the subset, not the file.
  void Train(const ts::DatasetReader& archive,
             const TrainFromDiskOptions& disk = {});

  /// Classifies one series.
  int Classify(ts::SeriesView series) const;

  /// Classifies every instance of `test` (labels in `test` are ignored).
  /// Pattern contexts are built once and shared across the batch, and the
  /// loop runs on `options.num_threads` pool workers; predictions are
  /// identical to per-series Classify calls for any thread count.
  std::vector<int> ClassifyAll(const ts::Dataset& test) const;

  /// Error rate on a labeled test set.
  double Evaluate(const ts::Dataset& test) const;

  /// The learned representative patterns (empty before Train).
  const std::vector<RepresentativePattern>& patterns() const {
    return patterns_;
  }

  /// SAX parameters chosen per class.
  const std::map<int, sax::SaxOptions>& sax_by_class() const {
    return sax_by_class_;
  }

  /// Distinct SAX combos evaluated during parameter selection (R).
  std::size_t combos_evaluated() const { return combos_evaluated_; }

  bool trained() const { return trained_; }

  const RpmOptions& options() const { return options_; }

  /// Worker threads used by ClassifyAll (results are bit-identical for
  /// any value; only wall-clock time changes). Lets loaded models — whose
  /// persisted format carries no thread count — be re-tuned to the host.
  void set_num_threads(std::size_t n) { options_.num_threads = n; }

  /// The fitted feature-space classifier, or nullptr for the
  /// majority-class fallback (and before Train).
  const ml::FeatureClassifier* feature_classifier() const {
    return feature_classifier_.get();
  }

  /// Label predicted when no patterns were minable.
  int majority_label() const { return majority_label_; }

  /// Transform configuration used at classification time.
  TransformOptions classify_transform_options() const;

  /// Stage timings and counts from the last Train call.
  const TrainingReport& report() const { return report_; }

  /// Persists the trained model (patterns, per-class SAX parameters,
  /// transform flags, feature classifier) as line-oriented text.
  /// Requires trained().
  void Save(std::ostream& out) const;
  void SaveToFile(const std::string& path) const;

  /// Restores a model written by Save. The returned classifier is ready
  /// to Classify without retraining. Throws std::runtime_error on
  /// malformed input.
  static RpmClassifier Load(std::istream& in);
  static RpmClassifier LoadFromFile(const std::string& path);

 private:
  RpmOptions options_;
  bool trained_ = false;
  int majority_label_ = 0;
  std::vector<RepresentativePattern> patterns_;
  std::map<int, sax::SaxOptions> sax_by_class_;
  std::size_t combos_evaluated_ = 0;
  TrainingReport report_;
  std::unique_ptr<ml::FeatureClassifier> feature_classifier_;
};

/// Reusable request-oriented classification engine: the pattern-match
/// contexts (one per representative pattern) are built once at
/// construction and shared — read-only — across every request and worker
/// thread, so repeated single-series classification skips the per-call
/// context rebuild that Classify pays. This is the context-reuse hook the
/// serving layer (src/serve) keeps warm between requests.
///
/// Keeps pointers into `clf`: the classifier must outlive the engine and
/// must not be retrained while the engine is alive.
class ClassificationEngine {
 public:
  explicit ClassificationEngine(const RpmClassifier& clf);

  /// Label of one series, identical to clf.Classify(series).
  int Classify(ts::SeriesView series) const;

  /// Labels for a batch of plain series, parallel over `num_threads` pool
  /// workers; bit-identical to per-series Classify for any thread count.
  std::vector<int> ClassifyBatch(std::span<const ts::Series> batch,
                                 std::size_t num_threads = 1) const;

  /// Dataset variant (labels in `data` are ignored).
  std::vector<int> ClassifyDataset(const ts::Dataset& data,
                                   std::size_t num_threads = 1) const;

  std::size_t num_patterns() const;

  /// False for a majority-class fallback model: no pattern space exists,
  /// Row/PredictRow must not be called and Classify returns the majority
  /// label unconditionally.
  bool has_feature_space() const { return engine_.has_value(); }

  /// The K-dim pattern-distance row of one series (the transform the
  /// feature classifier consumes). Requires has_feature_space(). Exposed
  /// so callers that need both the row and the label — e.g. the streaming
  /// scorer's confidence margin — pay the pattern scan once.
  std::vector<double> Row(ts::SeriesView series) const;

  /// Alloc-free Row for hot loops (the streaming scorer's per-hop path):
  /// contexts and match buffers persist in `scratch`, the row is written
  /// into `*row`. Bit-identical to Row. Requires has_feature_space().
  void RowInto(ts::SeriesView series, TransformScratch* scratch,
               std::vector<double>* row) const;

  /// Feature-classifier prediction on a row produced by Row(). Requires
  /// has_feature_space(). PredictRow(Row(s)) == Classify(s).
  int PredictRow(std::span<const double> row) const;

  /// The classifier the engine was built over (patterns, class labels,
  /// majority fallback).
  const RpmClassifier& classifier() const { return *clf_; }

 private:
  const RpmClassifier* clf_;
  /// Engaged unless the classifier is a majority-class fallback.
  std::optional<TransformEngine> engine_;
};

}  // namespace rpm::core

#endif  // RPM_CORE_CLASSIFIER_H_
