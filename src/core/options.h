// Configuration of the RPM classifier (Sections 3-4 knobs).

#ifndef RPM_CORE_OPTIONS_H_
#define RPM_CORE_OPTIONS_H_

#include <cstdint>

#include "cluster/hierarchical.h"
#include "grammar/repair.h"
#include "ml/simple_classifiers.h"
#include "ml/svm.h"
#include "sax/sax.h"

namespace rpm::core {

class TrainingCache;

/// Cluster prototype choice (Algorithm 1, line 15: "an alternative is to
/// use the medoid instead of centroid").
enum class ClusterPrototype { kCentroid, kMedoid };

/// How SAX parameters are chosen before training.
enum class ParameterSearch {
  kFixed,   ///< use `fixed_sax` for every class
  kGrid,    ///< Algorithm 3, exhaustive (Section 4.1)
  kDirect,  ///< DIRECT-driven search (Section 4.2), the paper's default
};

struct RpmOptions {
  /// Minimum cluster size as a fraction of the class's training size
  /// (gamma; the paper's experiments use 20 %).
  double gamma = 0.2;

  /// Percentile of pooled within-cluster pairwise distances used as the
  /// similar-candidate removal threshold tau (Section 3.2.3; 30 in the
  /// paper, swept in Table 3 / Figure 9).
  double tau_percentile = 30.0;

  ClusterPrototype prototype = ClusterPrototype::kCentroid;
  cluster::SplitOptions split;

  /// Drop grammar-rule occurrences spanning concatenation junctions
  /// (Figure 4); ablation switch.
  bool filter_junctions = true;

  /// Numerosity reduction during discretization; ablation switch.
  bool numerosity_reduction = true;

  /// Grammar-induction backend (Section 3.2.2 notes the pipeline works
  /// with any context-free GI algorithm); Sequitur is the paper's choice,
  /// Re-Pair the alternative — ablated in bench/ablation_design.
  grammar::GiAlgorithm gi_algorithm = grammar::GiAlgorithm::kSequitur;

  /// Rotation-invariant transform at classification time (Section 6.1):
  /// also match against the test series rotated at its midpoint.
  bool rotation_invariant = false;

  /// Replace the exact best-match scans of the transform with the
  /// PAA-coarse approximate scan (the Section 5.3 speedup suggestion).
  bool approximate_matching = false;
  std::size_t approx_refine_top_k = 10;

  ParameterSearch search = ParameterSearch::kDirect;
  /// SAX parameters used when `search == kFixed`.
  sax::SaxOptions fixed_sax;

  /// Parameter-search budget: random train/validation splits per combo
  /// (the paper uses 5) and folds of the inner CV (paper: 5). Defaults
  /// are trimmed for the synthetic suite's scale.
  std::size_t param_splits = 3;
  std::size_t param_folds = 3;
  double param_train_fraction = 0.7;
  /// Objective-call budget for DIRECT per class (R in Section 5.3).
  std::size_t direct_max_evaluations = 24;
  /// Grid stride for kGrid (window dimension).
  int grid_window_step = 8;

  /// Final classifier over the pattern-distance features (Section 3.1:
  /// "our algorithm can work with any classifier"); SVM is the paper's
  /// choice, k-NN and Gaussian Naive Bayes are the ablation alternatives.
  ml::FeatureClassifierKind final_classifier =
      ml::FeatureClassifierKind::kSvm;
  std::size_t knn_k = 1;

  ml::SvmOptions svm;
  std::uint64_t seed = 1234;

  /// Worker threads for per-class candidate mining and dataset
  /// transformation. Results are bit-identical for any value (work items
  /// are independent); 1 = fully sequential.
  std::size_t num_threads = 1;

  /// Archive-scale candidate discovery (docs/DATASETS.md): cap on the
  /// instances per class concatenated in front of Sequitur. Past the
  /// cap a seeded uniform subset (ReservoirSample, ClassSeed(seed,
  /// label)) is mined instead; the frequency requirement gamma applies
  /// to the sampled count. 0 — and any cap at or above the class size —
  /// leaves training bit-identical to the unsampled pipeline.
  std::size_t discovery_sample_per_class = 0;

  /// Byte budget for the parameter-search discretization cache
  /// (TrainingCache): DIRECT / grid probes share z-normalized window and
  /// PAA matrices across SAX combos instead of rediscretizing. 0 disables
  /// the cache. Cached and uncached runs are bit-identical.
  std::size_t training_cache_bytes = std::size_t{256} << 20;

  /// Lock shards of the TrainingCache (each shard owns its slice of the
  /// byte budget behind its own mutex, so concurrent split evaluations
  /// never convoy on one lock). 0 picks a default sized to num_threads;
  /// any value yields bit-identical results.
  std::size_t training_cache_shards = 0;

  /// Non-owning cache injected by parameter selection into the inner
  /// candidate-mining calls; leave null elsewhere (candidate mining falls
  /// back to plain sax::DiscretizeSlidingWindow).
  TrainingCache* training_cache = nullptr;
};

}  // namespace rpm::core

#endif  // RPM_CORE_OPTIONS_H_
