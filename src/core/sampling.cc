#include "core/sampling.h"

#include <algorithm>
#include <map>
#include <random>

namespace rpm::core {

namespace {

// splitmix64 finalizer: decorrelates adjacent seeds/labels so per-class
// substreams are independent even for labels 1, 2, 3, ...
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t ClassSeed(std::uint64_t seed, int label) {
  return Mix64(seed ^ Mix64(static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(label))));
}

std::vector<std::size_t> ReservoirSample(std::size_t population,
                                         std::size_t k, std::uint64_t seed) {
  std::vector<std::size_t> out;
  if (k >= population || k == 0) {
    // 0 means "no cap" to every caller; identity either way.
    out.resize(population);
    for (std::size_t i = 0; i < population; ++i) out[i] = i;
    return out;
  }
  out.resize(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = i;
  // Algorithm R: element i replaces a reservoir slot with probability
  // k/(i+1). mt19937_64 + uniform_int_distribution keeps the draw
  // deterministic for a given seed (pinned by sampling tests).
  std::mt19937_64 engine(seed);
  for (std::size_t i = k; i < population; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        std::uniform_int_distribution<std::uint64_t>(0, i)(engine));
    if (j < k) out[j] = i;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> StratifiedSample(std::span<const int> labels,
                                          std::size_t per_class,
                                          std::uint64_t seed) {
  // Group indices by label (map keeps classes in ascending label order,
  // though the final sort makes the output order-independent anyway).
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(i);
  }
  std::vector<std::size_t> out;
  for (const auto& [label, members] : by_class) {
    const std::vector<std::size_t> pick =
        ReservoirSample(members.size(), per_class, ClassSeed(seed, label));
    for (std::size_t p : pick) out.push_back(members[p]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rpm::core
