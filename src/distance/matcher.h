// Batched best-match engine: precomputed per-pattern and per-series
// contexts for the z-normalized closest-match scan (Section 2.1,
// Section 5.3 early abandoning).
//
// The per-call FindBestMatch kernel re-derives two things on every single
// pattern x series invocation: the pattern's largest-|z| early-abandon
// ordering (an O(n log n) sort) and the haystack's rolling window
// moments. The transform stage calls that kernel K x |dataset| times —
// and parameter selection repeats the transform for every DIRECT combo x
// split — so the redundant work dominates end-to-end runtime.
//
// This engine splits the state by lifetime:
//  * PatternContext — the z-normalized pattern, its moments, and its
//    end-point values, computed once per pattern and reused against every
//    series. (The closed-form kernel never walks points in sorted order,
//    so no per-pattern sort exists anywhere anymore.)
//  * SeriesContext — prefix-sum / prefix-sum-of-squares arrays over the
//    haystack, so the mean and stddev of *any* window of *any* length
//    come from two O(1) lookups; built once per series and shared by all
//    patterns regardless of their lengths.
//  * BatchedBestMatch — the scan itself, with a cheap first/last-point
//    lower bound cascaded before the full early-abandon loop: windows
//    whose two end-point terms already exceed the best-so-far are
//    skipped without touching the other n-2 points.
//
// FindBestMatch (distance/euclidean.h) is now a thin wrapper that builds
// both contexts on the fly, so per-call and batched paths share one
// kernel and return bit-identical results.

#ifndef RPM_DISTANCE_MATCHER_H_
#define RPM_DISTANCE_MATCHER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "distance/euclidean.h"
#include "ts/series.h"

namespace rpm::distance {

class PatternStore;

/// Reusable per-call state for the batched MatchAll path (per-pattern
/// best-so-far in the scan's squared space). Callers on hot paths keep
/// one scratch alive across calls so steady-state matching allocates
/// nothing; a default-constructed scratch works for one-off calls.
struct MatchScratch {
  std::vector<double> best_sq;
  std::vector<std::size_t> best_pos;
  /// Per-pattern decided/hit flags, used by the AnyBelow existence scan.
  std::vector<std::uint8_t> below;
};

/// Per-pattern precomputation for the batched scan. The pattern is
/// copied, so the context owns everything it needs.
struct PatternContext {
  PatternContext() = default;
  /// `pattern` must already be z-normalized (the RPM pipeline invariant;
  /// FindBestMatch has always assumed the same).
  explicit PatternContext(ts::SeriesView pattern);

  std::size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }

  /// The (z-normalized) pattern values.
  ts::Series values;
  /// 1 / |pattern| (0 when empty), for length normalization.
  double inv_n = 0.0;
  /// Sum and sum of squares of the pattern values (for a z-normalized
  /// pattern these are ~0 and ~|pattern|, but the kernel uses the exact
  /// floating-point values so nothing depends on perfect normalization).
  double sum = 0.0;
  double sum_sq = 0.0;
};

/// Per-series precomputation: prefix sums of values and squared values.
/// Holds a *view* of the series — the underlying data must outlive the
/// context (datasets are stable for the duration of a transform).
class SeriesContext {
 public:
  SeriesContext() = default;
  explicit SeriesContext(ts::SeriesView series);

  /// Rebuilds the context over a new series, reusing the prefix buffers
  /// when capacity allows — the alloc-free path for streaming callers
  /// that re-context every window slide.
  void Assign(ts::SeriesView series);

  ts::SeriesView data() const { return data_; }
  std::size_t size() const { return data_.size(); }

  /// Mean and inverse stddev of the window [pos, pos+len) in O(1).
  /// Flat windows (stddev < ts::kFlatThreshold) get inv_sigma = 1, the
  /// same mean-center-only rule the per-call kernel applies.
  /// Precondition: pos + len <= size(), len > 0.
  void WindowMoments(std::size_t pos, std::size_t len, double* mu,
                     double* inv_sigma) const;

  /// Sum of values / squared values over [pos, pos+len) in O(1).
  double WindowSum(std::size_t pos, std::size_t len) const {
    return prefix_[pos + len] - prefix_[pos];
  }
  double WindowSumSq(std::size_t pos, std::size_t len) const {
    return prefix_sq_[pos + len] - prefix_sq_[pos];
  }

  /// Raw prefix arrays (size() + 1 entries each) for kernels that batch
  /// window-moment computation across consecutive positions.
  const double* PrefixData() const { return prefix_.data(); }
  const double* PrefixSqData() const { return prefix_sq_.data(); }

 private:
  ts::SeriesView data_;
  std::vector<double> prefix_;     // prefix_[i] = sum of data[0..i)
  std::vector<double> prefix_sq_;  // prefix_sq_[i] = sum of squares
};

/// Closest match of the pattern inside the series (same contract as
/// FindBestMatch): every window of length |pattern| is z-normalized and
/// compared under length-normalized Euclidean distance. Returns an
/// explicit unfound sentinel (position == npos, distance == inf) when the
/// pattern is empty or longer than the series — mid-batch callers must
/// not rely on pre-checking sizes.
BestMatch BatchedBestMatch(const PatternContext& pattern,
                           const SeriesContext& series);

/// Cutoff-seeded variant for callers that only act on matches strictly
/// below `cutoff` (e.g. the tau test of similar-candidate removal): the
/// scan starts with best-so-far = cutoff, so the end-point lower bound
/// prunes windows that cannot beat it without running their dot product.
/// Returns the exact best match when its distance is below the cutoff,
/// and the unfound sentinel (npos, +inf) otherwise — so `result.distance
/// < cutoff` decides identically to the unseeded scan.
BestMatch BatchedBestMatch(const PatternContext& pattern,
                           const SeriesContext& series, double cutoff);

/// Existence test: true iff the closest match of `pattern` in `series`
/// is strictly below `cutoff`. Decides identically to
/// `BatchedBestMatch(pattern, series).distance < cutoff`, but stops at
/// the first window proven below the cutoff instead of scanning on for
/// the minimum — the right primitive for threshold tests that never
/// read the distance itself.
bool BatchedMatchBelow(const PatternContext& pattern,
                       const SeriesContext& series, double cutoff);

/// A set of pattern contexts built once and matched against many series.
///
/// MatchAll runs through a lazily built length-bucketed SoA PatternStore
/// (pattern_store.h): each bucket scans the series window-major so one
/// window's moments are shared by every same-length pattern, with
/// scalar/AVX2/AVX-512 kernels under the runtime ISA dispatcher
/// (isa_dispatch.h). Results are bit-identical to per-pattern Match on
/// every tier. The store is rebuilt on first MatchAll after an Add;
/// concurrent first-builds are serialized internally, so MatchAll stays
/// safe to call from parallel transform workers.
class BatchMatcher {
 public:
  BatchMatcher();
  /// Builds one context per pattern (patterns are copied).
  explicit BatchMatcher(const std::vector<ts::Series>& patterns);
  BatchMatcher(const BatchMatcher& other);
  BatchMatcher& operator=(const BatchMatcher& other);
  BatchMatcher(BatchMatcher&& other) noexcept;
  BatchMatcher& operator=(BatchMatcher&& other) noexcept;
  ~BatchMatcher();

  /// Appends one pattern (invalidates the SoA store; it is rebuilt on
  /// the next MatchAll).
  void Add(ts::SeriesView pattern);

  std::size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }
  const PatternContext& pattern(std::size_t i) const { return patterns_[i]; }

  /// Best match of pattern `i` in the series (sentinel when unfound).
  BestMatch Match(std::size_t i, const SeriesContext& series) const {
    return BatchedBestMatch(patterns_[i], series);
  }

  /// Best match of every pattern in the series, in pattern order.
  /// Patterns longer than the series yield the explicit unfound sentinel
  /// at their slot. The scratch/out overload is the alloc-free hot path;
  /// the returning overload wraps it for one-off callers.
  void MatchAll(const SeriesContext& series, MatchScratch* scratch,
                std::vector<BestMatch>* out) const;
  std::vector<BestMatch> MatchAll(const SeriesContext& series) const;

  /// MatchAll with per-pattern initial best-so-fars (`seeds[i]` in
  /// distance space, +inf = unseeded): bit-identical to calling the
  /// cutoff-seeded `BatchedBestMatch(pattern(i), series, seeds[i])` per
  /// pattern — slots whose scan never beats the seed get the unfound
  /// sentinel. `seeds` must have size() entries.
  void MatchAllSeeded(const SeriesContext& series, MatchScratch* scratch,
                      const std::vector<double>& seeds,
                      std::vector<BestMatch>* out) const;

  /// Batched existence test over every pattern at once: each decision is
  /// identical to `BatchedMatchBelow(pattern(i), series, tau)`, but the
  /// series is swept window-major through the SoA store, stopping each
  /// pattern at its first sub-tau window. With `below == nullptr` the
  /// call returns at the first sub-tau window of any pattern; otherwise
  /// `below` gets one 0/1 flag per pattern. Returns true iff any
  /// pattern matched below `tau`.
  bool AnyBelow(const SeriesContext& series, MatchScratch* scratch,
                double tau, std::vector<std::uint8_t>* below = nullptr) const;

  /// The lazily built SoA store (bench/introspection hook; builds it if
  /// no MatchAll has run yet).
  const PatternStore& store() const;

 private:
  PatternStore& EnsureStore() const;

  std::vector<PatternContext> patterns_;
  // Lazily (re)built from patterns_; guarded so concurrent MatchAll
  // calls racing on the first build stay safe.
  mutable std::mutex store_mutex_;
  mutable std::unique_ptr<PatternStore> store_;
};

}  // namespace rpm::distance

#endif  // RPM_DISTANCE_MATCHER_H_
