#include "distance/pattern_store.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "distance/isa_dispatch.h"
#include "distance/kernel_common.h"
#include "ts/znorm.h"

namespace rpm::distance {
namespace {

constexpr std::size_t kNpos = BestMatch::npos;

// Row stride: length rounded up to 8 doubles so every slab row starts on
// a 64-byte boundary.
std::size_t PaddedLength(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

// Everything one bucket scan needs, flattened so the per-ISA kernels
// share a single signature. `best_sq` / `best_pos` are the per-pattern
// running state (scan squared space / window position), updated in
// place; both are `count` entries.
struct BucketScan {
  const double* hay;
  const double* prefix;
  const double* prefix_sq;
  std::size_t m;  // series length
  std::size_t n;  // pattern length (>= 2 here; 1 and 0 are special-cased)
  double inv_n;
  const double* slab;  // first pattern row
  std::size_t stride;  // row stride in doubles
  std::size_t count;   // patterns in the bucket
  const double* p_first;
  const double* p_last;
  const double* p_sum;
  const double* p_sum_sq;
  internal::DotFn dot;
  double* best_sq;
  std::size_t* best_pos;
};

// Scalar bucket kernel, starting at window `pos`: the reference body the
// vector tiers must reproduce bit for bit, and the tail handler for
// their trailing < lane-width positions. Window-major: each window's
// moments and (window - mu) endpoint terms are computed once and shared
// by every pattern in the bucket; per-pattern decisions follow exactly
// the per-pattern scalar scan (matcher.cc BestMatchScan), in the same
// window order, so the sequence of best updates is identical.
void ScanBucketScalarFrom(const BucketScan& a, std::size_t pos) {
  const double nd = static_cast<double>(a.n);
  for (; pos + a.n <= a.m; ++pos) {
    const double sum = a.prefix[pos + a.n] - a.prefix[pos];
    const double sum_sq = a.prefix_sq[pos + a.n] - a.prefix_sq[pos];
    double mu = 0.0;
    double sigma = 0.0;
    ts::WindowMomentsFromSums(sum, sum_sq, a.inv_n, &mu, &sigma);
    const double sig2 = sigma * sigma;
    // Shared endpoint terms: (hay[pos] - mu) rounds identically whether
    // hoisted here or recomputed per pattern.
    const double w_f = a.hay[pos] - mu;
    const double w_l = a.hay[pos + a.n - 1] - mu;
    for (std::size_t p = 0; p < a.count; ++p) {
      const double thresh = a.best_sq[p] * sig2;
      const double d_first = w_f - a.p_first[p] * sigma;
      double lb = d_first * d_first;
      const double d_last = w_l - a.p_last[p] * sigma;
      lb += d_last * d_last;
      if (lb >= thresh) continue;
      const double dot = a.dot(a.hay + pos, a.slab + p * a.stride, a.n);
      const double csq = std::max(0.0, sum_sq - nd * mu * mu);
      const double d2s = std::max(
          0.0, csq - 2.0 * sigma * (dot - mu * a.p_sum[p]) +
                   a.p_sum_sq[p] * sig2);
      if (d2s < thresh) {
        a.best_sq[p] = d2s / sig2;
        a.best_pos[p] = pos;
      }
    }
  }
}

// Everything one existence scan over a bucket needs. Unlike BucketScan
// there is no per-pattern running best: the threshold seed is uniform
// (tau^2 * n) and never improves — a pattern is simply decided the
// first time a window passes both gates. `hit` is one 0/1 flag per
// pattern; `*remaining` counts still-undecided patterns so the sweep
// stops once the whole bucket is decided; `first_hit` makes the sweep
// stop at the first hit of ANY pattern (aggregate existence mode).
struct BelowScan {
  const double* hay;
  const double* prefix;
  const double* prefix_sq;
  std::size_t m;  // series length
  std::size_t n;  // pattern length (>= 2 here; 1 and 0 are special-cased)
  double inv_n;
  const double* slab;  // first pattern row
  std::size_t stride;  // row stride in doubles
  std::size_t count;   // patterns in the bucket
  const double* p_first;
  const double* p_last;
  const double* p_sum;
  const double* p_sum_sq;
  internal::DotFn dot;
  double seed_sq;  // tau^2 * n (sign-preserved infinities pass through)
  std::uint8_t* hit;
  std::size_t* remaining;
  bool first_hit;
};

// Scalar existence kernel, starting at window `pos`. Decision-identical
// to the first-hit seeded per-pattern scan (matcher.cc BestMatchScan
// with first_hit): that scan stops at its first improvement, so every
// threshold it ever tests is seed-derived — exactly `seed_sq * sig2`
// here — and "some window passes both gates" does not depend on sweep
// order, so deciding window-major decides identically.
void ScanBucketBelowScalarFrom(const BelowScan& a, std::size_t pos) {
  const double nd = static_cast<double>(a.n);
  for (; pos + a.n <= a.m && *a.remaining > 0; ++pos) {
    const double sum = a.prefix[pos + a.n] - a.prefix[pos];
    const double sum_sq = a.prefix_sq[pos + a.n] - a.prefix_sq[pos];
    double mu = 0.0;
    double sigma = 0.0;
    ts::WindowMomentsFromSums(sum, sum_sq, a.inv_n, &mu, &sigma);
    const double sig2 = sigma * sigma;
    // The whole bucket shares one threshold: the seed never improves,
    // so it hoists out of the pattern loop.
    const double thresh = a.seed_sq * sig2;
    const double w_f = a.hay[pos] - mu;
    const double w_l = a.hay[pos + a.n - 1] - mu;
    for (std::size_t p = 0; p < a.count; ++p) {
      if (a.hit[p] != 0) continue;
      const double d_first = w_f - a.p_first[p] * sigma;
      double lb = d_first * d_first;
      const double d_last = w_l - a.p_last[p] * sigma;
      lb += d_last * d_last;
      if (lb >= thresh) continue;
      const double dot = a.dot(a.hay + pos, a.slab + p * a.stride, a.n);
      const double csq = std::max(0.0, sum_sq - nd * mu * mu);
      const double d2s = std::max(
          0.0, csq - 2.0 * sigma * (dot - mu * a.p_sum[p]) +
                   a.p_sum_sq[p] * sig2);
      if (d2s < thresh) {
        a.hit[p] = 1;
        if (a.first_hit) {
          *a.remaining = 0;
          return;
        }
        if (--*a.remaining == 0) return;
      }
    }
  }
}

#if defined(RPM_DOT_AVX2_DISPATCH)

// AVX2 bucket kernel: four window positions per iteration. The block's
// moments, endpoint terms and csq are computed once per iteration
// (per-lane arithmetic identical to the scalar body, explicit
// mul/add/sub/sqrt, never FMA) and reused by every pattern. The dot
// products are vectorized ACROSS the four windows: element i of windows
// pos..pos+3 is the contiguous load hay[pos+i .. pos+i+3], multiplied by
// the broadcast pattern value row[i], accumulated into partial-sum
// vector v(i mod 4) — each lane therefore replays the canonical
// four-partial accumulation order (kernel_common.h) element for element,
// so the per-lane dot is bit-identical to DotBase on that window. A dot
// has no side effects, so whenever any lane survives the block-start
// prune the kernel computes all four lanes' distances; the best-update
// sweep then applies the scalar loop's exact gates (endpoint lower
// bound, then d2s < thresh, both against the *current* best) in window
// order, so the per-pattern sequence of best updates is identical to the
// scalar body's.
__attribute__((target("avx2"))) void ScanBucketAvx2(const BucketScan& a) {
  const std::size_t n = a.n;
  const std::size_t m = a.m;
  const __m256d vinv_n = _mm256_set1_pd(a.inv_n);
  const __m256d vnd = _mm256_set1_pd(static_cast<double>(n));
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  const __m256d vflat = _mm256_set1_pd(ts::kFlatThreshold);

  alignas(32) double sig2_l[4];
  alignas(32) double lb_l[4];
  alignas(32) double d2s_l[4];

  std::size_t pos = 0;
  for (; pos + 3 + n <= m; pos += 4) {
    const __m256d vsum = _mm256_sub_pd(_mm256_loadu_pd(a.prefix + pos + n),
                                       _mm256_loadu_pd(a.prefix + pos));
    const __m256d vsum_sq =
        _mm256_sub_pd(_mm256_loadu_pd(a.prefix_sq + pos + n),
                      _mm256_loadu_pd(a.prefix_sq + pos));
    const __m256d vmu = _mm256_mul_pd(vsum, vinv_n);
    const __m256d vvar = _mm256_max_pd(
        vzero, _mm256_sub_pd(_mm256_mul_pd(vsum_sq, vinv_n),
                             _mm256_mul_pd(vmu, vmu)));
    __m256d vsigma = _mm256_sqrt_pd(vvar);
    vsigma = _mm256_blendv_pd(vsigma, vone,
                              _mm256_cmp_pd(vsigma, vflat, _CMP_LT_OQ));
    const __m256d vsig2 = _mm256_mul_pd(vsigma, vsigma);
    const __m256d vw_f =
        _mm256_sub_pd(_mm256_loadu_pd(a.hay + pos), vmu);
    const __m256d vw_l =
        _mm256_sub_pd(_mm256_loadu_pd(a.hay + pos + n - 1), vmu);
    // csq = max(0, sum_sq - nd*mu*mu): pattern-independent, hoisted —
    // the expression tree matches the scalar body's, so each lane rounds
    // identically.
    const __m256d vcsq = _mm256_max_pd(
        vzero, _mm256_sub_pd(vsum_sq,
                             _mm256_mul_pd(_mm256_mul_pd(vnd, vmu), vmu)));

    for (std::size_t p = 0; p < a.count; ++p) {
      const __m256d vd_f =
          _mm256_sub_pd(vw_f, _mm256_mul_pd(_mm256_set1_pd(a.p_first[p]),
                                            vsigma));
      __m256d vlb = _mm256_mul_pd(vd_f, vd_f);
      const __m256d vd_l =
          _mm256_sub_pd(vw_l, _mm256_mul_pd(_mm256_set1_pd(a.p_last[p]),
                                            vsigma));
      vlb = _mm256_add_pd(vlb, _mm256_mul_pd(vd_l, vd_l));
      const __m256d vthresh =
          _mm256_mul_pd(_mm256_set1_pd(a.best_sq[p]), vsig2);
      const int keep =
          _mm256_movemask_pd(_mm256_cmp_pd(vlb, vthresh, _CMP_LT_OQ));
      // The best only shrinks within a block, so the block-start
      // threshold is an upper bound on every later threshold: an
      // all-lanes prune here means the scalar loop prunes all four
      // windows too.
      if (keep == 0) continue;

      // Four windows' dots at once, one per lane. For fixed element i
      // the four windows read hay[pos+i .. pos+i+3] — one unaligned
      // load — times the broadcast row[i]; accumulator k takes the
      // i % 4 == k elements in index order, tail elements fold into v0,
      // and the partials combine as (s0+s1)+(s2+s3): the pinned order,
      // per lane.
      const double* row = a.slab + p * a.stride;
      const double* hb = a.hay + pos;
      __m256d v0 = vzero;
      __m256d v1 = vzero;
      __m256d v2 = vzero;
      __m256d v3 = vzero;
      std::size_t i = 0;
      for (; i + 4 <= n; i += 4) {
        v0 = _mm256_add_pd(
            v0, _mm256_mul_pd(_mm256_loadu_pd(hb + i),
                              _mm256_set1_pd(row[i])));
        v1 = _mm256_add_pd(
            v1, _mm256_mul_pd(_mm256_loadu_pd(hb + i + 1),
                              _mm256_set1_pd(row[i + 1])));
        v2 = _mm256_add_pd(
            v2, _mm256_mul_pd(_mm256_loadu_pd(hb + i + 2),
                              _mm256_set1_pd(row[i + 2])));
        v3 = _mm256_add_pd(
            v3, _mm256_mul_pd(_mm256_loadu_pd(hb + i + 3),
                              _mm256_set1_pd(row[i + 3])));
      }
      for (; i < n; ++i) {
        v0 = _mm256_add_pd(
            v0, _mm256_mul_pd(_mm256_loadu_pd(hb + i),
                              _mm256_set1_pd(row[i])));
      }
      const __m256d vdot =
          _mm256_add_pd(_mm256_add_pd(v0, v1), _mm256_add_pd(v2, v3));

      // d2s = max(0, csq - 2*sigma*(dot - mu*p_sum) + p_sum_sq*sig2),
      // same expression tree as the scalar body.
      const __m256d vcross = _mm256_mul_pd(
          _mm256_mul_pd(vtwo, vsigma),
          _mm256_sub_pd(vdot, _mm256_mul_pd(vmu,
                                            _mm256_set1_pd(a.p_sum[p]))));
      const __m256d vd2s = _mm256_max_pd(
          vzero,
          _mm256_add_pd(_mm256_sub_pd(vcsq, vcross),
                        _mm256_mul_pd(_mm256_set1_pd(a.p_sum_sq[p]),
                                      vsig2)));

      // Fast path: no lane can update unless it passes both gates with
      // the sweep-start best — the largest threshold any lane will face,
      // since the best only shrinks lane to lane.
      const __m256d vthresh_now =
          _mm256_mul_pd(_mm256_set1_pd(a.best_sq[p]), vsig2);
      const int cand = _mm256_movemask_pd(_mm256_and_pd(
          _mm256_cmp_pd(vlb, vthresh_now, _CMP_LT_OQ),
          _mm256_cmp_pd(vd2s, vthresh_now, _CMP_LT_OQ)));
      if (cand == 0) continue;
      _mm256_store_pd(sig2_l, vsig2);
      _mm256_store_pd(lb_l, vlb);
      _mm256_store_pd(d2s_l, vd2s);
      for (int lane = 0; lane < 4; ++lane) {
        // The scalar loop's gates against the *current* best (the vector
        // mask used the block-start best, which may have improved): skip
        // on the endpoint bound first — exactly the windows the scalar
        // loop skips — then update on d2s < thresh.
        const double thresh = a.best_sq[p] * sig2_l[lane];
        if (lb_l[lane] >= thresh) continue;
        if (d2s_l[lane] < thresh) {
          a.best_sq[p] = d2s_l[lane] / sig2_l[lane];
          a.best_pos[p] = pos + static_cast<std::size_t>(lane);
        }
      }
    }
  }
  ScanBucketScalarFrom(a, pos);  // trailing < 4 positions
}

// AVX-512 bucket kernel: sixteen window positions per iteration as two
// 8-wide blocks (A at pos, B at pos+8), each with the same across-window
// dot and re-gate discipline as the AVX2 body. Two blocks per iteration
// is a latency play: one 8-wide block gives the dot loop four dependent
// add chains — at 4-cycle vaddpd latency that caps throughput at one
// accumulate per cycle while the FP ports can retire two. Interleaving a
// second block doubles the independent chains (and shares each row[i]
// broadcast between them), saturating the adders. Per-lane arithmetic
// and the best-update sweep are identical to the 8-wide epilogue body,
// which handles the trailing 8..15 positions before the scalar tail.
//
// GCC 12's avx512fintrin.h initializes _mm512_undefined_pd() as
// `__Y = __Y`, which -Wmaybe-uninitialized flags inside the inlined
// sqrt/cmp intrinsics; the value is a don't-care by construction.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// Per-block window state shared by every pattern in the bucket: moments,
// endpoint terms and csq for the 8 windows starting at `pos`, computed
// with the scalar body's expression trees (see ScanBucketScalarFrom).
struct Block512 {
  __m512d vsum_sq;
  __m512d vmu;
  __m512d vsigma;
  __m512d vsig2;
  __m512d vw_f;
  __m512d vw_l;
  __m512d vcsq;
};

__attribute__((target("avx512f"), always_inline)) inline Block512
LoadBlock512(const BucketScan& a, std::size_t pos, __m512d vinv_n,
             __m512d vnd) {
  const __m512d vzero = _mm512_setzero_pd();
  const __m512d vone = _mm512_set1_pd(1.0);
  const __m512d vflat = _mm512_set1_pd(ts::kFlatThreshold);
  const std::size_t n = a.n;
  Block512 b;
  const __m512d vsum = _mm512_sub_pd(_mm512_loadu_pd(a.prefix + pos + n),
                                     _mm512_loadu_pd(a.prefix + pos));
  b.vsum_sq = _mm512_sub_pd(_mm512_loadu_pd(a.prefix_sq + pos + n),
                            _mm512_loadu_pd(a.prefix_sq + pos));
  b.vmu = _mm512_mul_pd(vsum, vinv_n);
  const __m512d vvar = _mm512_max_pd(
      vzero, _mm512_sub_pd(_mm512_mul_pd(b.vsum_sq, vinv_n),
                           _mm512_mul_pd(b.vmu, b.vmu)));
  __m512d vsigma = _mm512_sqrt_pd(vvar);
  // Flat-window rule per lane: sigma < threshold -> 1.0.
  const __mmask8 flat = _mm512_cmp_pd_mask(vsigma, vflat, _CMP_LT_OQ);
  b.vsigma = _mm512_mask_blend_pd(flat, vsigma, vone);
  b.vsig2 = _mm512_mul_pd(b.vsigma, b.vsigma);
  b.vw_f = _mm512_sub_pd(_mm512_loadu_pd(a.hay + pos), b.vmu);
  b.vw_l = _mm512_sub_pd(_mm512_loadu_pd(a.hay + pos + n - 1), b.vmu);
  b.vcsq = _mm512_max_pd(
      vzero,
      _mm512_sub_pd(b.vsum_sq,
                    _mm512_mul_pd(_mm512_mul_pd(vnd, b.vmu), b.vmu)));
  return b;
}

// Endpoint lower bound for pattern p over a block, against the
// block-start best (conservative: the best only shrinks, so an all-lanes
// prune is exactly the scalar loop's outcome for these windows).
__attribute__((target("avx512f"), always_inline)) inline __m512d
LowerBound512(const Block512& b, double p_first, double p_last) {
  const __m512d vd_f = _mm512_sub_pd(
      b.vw_f, _mm512_mul_pd(_mm512_set1_pd(p_first), b.vsigma));
  __m512d vlb = _mm512_mul_pd(vd_f, vd_f);
  const __m512d vd_l = _mm512_sub_pd(
      b.vw_l, _mm512_mul_pd(_mm512_set1_pd(p_last), b.vsigma));
  return _mm512_add_pd(vlb, _mm512_mul_pd(vd_l, vd_l));
}

// d2s = max(0, csq - 2*sigma*(dot - mu*p_sum) + p_sum_sq*sig2), the
// scalar body's expression tree per lane.
__attribute__((target("avx512f"), always_inline)) inline __m512d
Distances512(const Block512& b, __m512d vdot, double p_sum,
             double p_sum_sq) {
  const __m512d vcross = _mm512_mul_pd(
      _mm512_mul_pd(_mm512_set1_pd(2.0), b.vsigma),
      _mm512_sub_pd(vdot, _mm512_mul_pd(b.vmu, _mm512_set1_pd(p_sum))));
  return _mm512_max_pd(
      _mm512_setzero_pd(),
      _mm512_add_pd(_mm512_sub_pd(b.vcsq, vcross),
                    _mm512_mul_pd(_mm512_set1_pd(p_sum_sq), b.vsig2)));
}

// Best-update sweep over one block's 8 lanes, in window order, applying
// the scalar loop's gates against the *current* best (the vector prune
// used the block-start best, which may have improved): skip on the
// endpoint bound first — exactly the windows the scalar loop skips —
// then update on d2s < thresh.
__attribute__((target("avx512f"), always_inline)) inline void SweepBlock512(
    const BucketScan& a, std::size_t p, std::size_t pos, const Block512& b,
    __m512d vlb, __m512d vd2s) {
  // Fast path: test every lane against the sweep-start best. The best
  // only shrinks lane to lane, so this threshold is the largest any lane
  // in the block will face — if no lane passes both gates with it, no
  // lane can update, exactly as in the scalar loop.
  const __m512d vthresh =
      _mm512_mul_pd(_mm512_set1_pd(a.best_sq[p]), b.vsig2);
  const __mmask8 cand =
      _mm512_cmp_pd_mask(vlb, vthresh, _CMP_LT_OQ) &
      _mm512_cmp_pd_mask(vd2s, vthresh, _CMP_LT_OQ);
  if (cand == 0) return;
  alignas(64) double sig2_l[8];
  alignas(64) double lb_l[8];
  alignas(64) double d2s_l[8];
  _mm512_store_pd(sig2_l, b.vsig2);
  _mm512_store_pd(lb_l, vlb);
  _mm512_store_pd(d2s_l, vd2s);
  for (int lane = 0; lane < 8; ++lane) {
    const double thresh = a.best_sq[p] * sig2_l[lane];
    if (lb_l[lane] >= thresh) continue;
    if (d2s_l[lane] < thresh) {
      a.best_sq[p] = d2s_l[lane] / sig2_l[lane];
      a.best_pos[p] = pos + static_cast<std::size_t>(lane);
    }
  }
}

__attribute__((target("avx512f"))) void ScanBucketAvx512(
    const BucketScan& a) {
  const std::size_t n = a.n;
  const std::size_t m = a.m;
  const __m512d vinv_n = _mm512_set1_pd(a.inv_n);
  const __m512d vnd = _mm512_set1_pd(static_cast<double>(n));
  const __m512d vzero = _mm512_setzero_pd();

  std::size_t pos = 0;
  // Main loop: two 8-wide blocks per iteration.
  for (; pos + 15 + n <= m; pos += 16) {
    const Block512 ba = LoadBlock512(a, pos, vinv_n, vnd);
    const Block512 bb = LoadBlock512(a, pos + 8, vinv_n, vnd);
    for (std::size_t p = 0; p < a.count; ++p) {
      const __m512d vlb_a = LowerBound512(ba, a.p_first[p], a.p_last[p]);
      const __m512d vlb_b = LowerBound512(bb, a.p_first[p], a.p_last[p]);
      const __m512d vthresh_b = _mm512_set1_pd(a.best_sq[p]);
      const __mmask8 keep_a = _mm512_cmp_pd_mask(
          vlb_a, _mm512_mul_pd(vthresh_b, ba.vsig2), _CMP_LT_OQ);
      const __mmask8 keep_b = _mm512_cmp_pd_mask(
          vlb_b, _mm512_mul_pd(vthresh_b, bb.vsig2), _CMP_LT_OQ);
      // Rarely-pruning workloads pay nothing for lumping the two blocks
      // into one survive-check; prune-heavy ones still skip the dots
      // whenever all sixteen windows are out.
      if ((keep_a | keep_b) == 0) continue;

      // Sixteen windows' dots at once: eight independent accumulate
      // chains (see the AVX2 body for the per-lane order argument),
      // block A and block B sharing each row[i] broadcast.
      const double* row = a.slab + p * a.stride;
      const double* hb = a.hay + pos;
      __m512d va0 = vzero;
      __m512d va1 = vzero;
      __m512d va2 = vzero;
      __m512d va3 = vzero;
      __m512d vb0 = vzero;
      __m512d vb1 = vzero;
      __m512d vb2 = vzero;
      __m512d vb3 = vzero;
      std::size_t i = 0;
      for (; i + 4 <= n; i += 4) {
        const __m512d r0 = _mm512_set1_pd(row[i]);
        const __m512d r1 = _mm512_set1_pd(row[i + 1]);
        const __m512d r2 = _mm512_set1_pd(row[i + 2]);
        const __m512d r3 = _mm512_set1_pd(row[i + 3]);
        va0 = _mm512_add_pd(va0, _mm512_mul_pd(_mm512_loadu_pd(hb + i), r0));
        vb0 = _mm512_add_pd(
            vb0, _mm512_mul_pd(_mm512_loadu_pd(hb + i + 8), r0));
        va1 = _mm512_add_pd(
            va1, _mm512_mul_pd(_mm512_loadu_pd(hb + i + 1), r1));
        vb1 = _mm512_add_pd(
            vb1, _mm512_mul_pd(_mm512_loadu_pd(hb + i + 9), r1));
        va2 = _mm512_add_pd(
            va2, _mm512_mul_pd(_mm512_loadu_pd(hb + i + 2), r2));
        vb2 = _mm512_add_pd(
            vb2, _mm512_mul_pd(_mm512_loadu_pd(hb + i + 10), r2));
        va3 = _mm512_add_pd(
            va3, _mm512_mul_pd(_mm512_loadu_pd(hb + i + 3), r3));
        vb3 = _mm512_add_pd(
            vb3, _mm512_mul_pd(_mm512_loadu_pd(hb + i + 11), r3));
      }
      for (; i < n; ++i) {
        const __m512d r0 = _mm512_set1_pd(row[i]);
        va0 = _mm512_add_pd(va0, _mm512_mul_pd(_mm512_loadu_pd(hb + i), r0));
        vb0 = _mm512_add_pd(
            vb0, _mm512_mul_pd(_mm512_loadu_pd(hb + i + 8), r0));
      }
      const __m512d vdot_a =
          _mm512_add_pd(_mm512_add_pd(va0, va1), _mm512_add_pd(va2, va3));
      const __m512d vdot_b =
          _mm512_add_pd(_mm512_add_pd(vb0, vb1), _mm512_add_pd(vb2, vb3));

      const __m512d vd2s_a =
          Distances512(ba, vdot_a, a.p_sum[p], a.p_sum_sq[p]);
      const __m512d vd2s_b =
          Distances512(bb, vdot_b, a.p_sum[p], a.p_sum_sq[p]);
      // Window order: all of block A before any of block B.
      SweepBlock512(a, p, pos, ba, vlb_a, vd2s_a);
      SweepBlock512(a, p, pos + 8, bb, vlb_b, vd2s_b);
    }
  }
  // Epilogue: one 8-wide block for the trailing 8..15 positions.
  for (; pos + 7 + n <= m; pos += 8) {
    const Block512 ba = LoadBlock512(a, pos, vinv_n, vnd);
    for (std::size_t p = 0; p < a.count; ++p) {
      const __m512d vlb = LowerBound512(ba, a.p_first[p], a.p_last[p]);
      const __mmask8 keep = _mm512_cmp_pd_mask(
          vlb, _mm512_mul_pd(_mm512_set1_pd(a.best_sq[p]), ba.vsig2),
          _CMP_LT_OQ);
      if (keep == 0) continue;
      const double* row = a.slab + p * a.stride;
      const double* hb = a.hay + pos;
      __m512d v0 = vzero;
      __m512d v1 = vzero;
      __m512d v2 = vzero;
      __m512d v3 = vzero;
      std::size_t i = 0;
      for (; i + 4 <= n; i += 4) {
        v0 = _mm512_add_pd(
            v0, _mm512_mul_pd(_mm512_loadu_pd(hb + i),
                              _mm512_set1_pd(row[i])));
        v1 = _mm512_add_pd(
            v1, _mm512_mul_pd(_mm512_loadu_pd(hb + i + 1),
                              _mm512_set1_pd(row[i + 1])));
        v2 = _mm512_add_pd(
            v2, _mm512_mul_pd(_mm512_loadu_pd(hb + i + 2),
                              _mm512_set1_pd(row[i + 2])));
        v3 = _mm512_add_pd(
            v3, _mm512_mul_pd(_mm512_loadu_pd(hb + i + 3),
                              _mm512_set1_pd(row[i + 3])));
      }
      for (; i < n; ++i) {
        v0 = _mm512_add_pd(
            v0, _mm512_mul_pd(_mm512_loadu_pd(hb + i),
                              _mm512_set1_pd(row[i])));
      }
      const __m512d vdot =
          _mm512_add_pd(_mm512_add_pd(v0, v1), _mm512_add_pd(v2, v3));
      const __m512d vd2s = Distances512(ba, vdot, a.p_sum[p], a.p_sum_sq[p]);
      SweepBlock512(a, p, pos, ba, vlb, vd2s);
    }
  }
  ScanBucketScalarFrom(a, pos);  // trailing < 8 positions
}
#pragma GCC diagnostic pop

// AVX2 existence kernel: four window positions per iteration with the
// same hoisted block moments and across-window dots as ScanBucketAvx2
// (per-lane expression trees identical to the scalar body, explicit
// mul/add/sub/sqrt, never FMA). The threshold is seed-derived and fixed
// for the whole scan, so the vector gates ARE the per-window decisions:
// no post-hoc scalar re-gate exists because there is no running best to
// re-gate against — any set lane in (lb < thresh) & (d2s < thresh)
// means some window decides the pattern, exactly as in the scalar body.
// There is no 512-bit variant: the decisions are tier-invariant because
// the per-lane arithmetic is, so AVX-512 hosts run this kernel, like
// the per-pattern scan in matcher.cc.
__attribute__((target("avx2"))) void ScanBucketBelowAvx2(
    const BelowScan& a) {
  const std::size_t n = a.n;
  const std::size_t m = a.m;
  const __m256d vinv_n = _mm256_set1_pd(a.inv_n);
  const __m256d vnd = _mm256_set1_pd(static_cast<double>(n));
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  const __m256d vflat = _mm256_set1_pd(ts::kFlatThreshold);
  const __m256d vseed = _mm256_set1_pd(a.seed_sq);

  std::size_t pos = 0;
  for (; pos + 3 + n <= m && *a.remaining > 0; pos += 4) {
    const __m256d vsum = _mm256_sub_pd(_mm256_loadu_pd(a.prefix + pos + n),
                                       _mm256_loadu_pd(a.prefix + pos));
    const __m256d vsum_sq =
        _mm256_sub_pd(_mm256_loadu_pd(a.prefix_sq + pos + n),
                      _mm256_loadu_pd(a.prefix_sq + pos));
    const __m256d vmu = _mm256_mul_pd(vsum, vinv_n);
    const __m256d vvar = _mm256_max_pd(
        vzero, _mm256_sub_pd(_mm256_mul_pd(vsum_sq, vinv_n),
                             _mm256_mul_pd(vmu, vmu)));
    __m256d vsigma = _mm256_sqrt_pd(vvar);
    vsigma = _mm256_blendv_pd(vsigma, vone,
                              _mm256_cmp_pd(vsigma, vflat, _CMP_LT_OQ));
    const __m256d vsig2 = _mm256_mul_pd(vsigma, vsigma);
    const __m256d vw_f =
        _mm256_sub_pd(_mm256_loadu_pd(a.hay + pos), vmu);
    const __m256d vw_l =
        _mm256_sub_pd(_mm256_loadu_pd(a.hay + pos + n - 1), vmu);
    const __m256d vcsq = _mm256_max_pd(
        vzero, _mm256_sub_pd(vsum_sq,
                             _mm256_mul_pd(_mm256_mul_pd(vnd, vmu), vmu)));
    // One threshold for the whole bucket (the seed never improves).
    const __m256d vthresh = _mm256_mul_pd(vseed, vsig2);

    for (std::size_t p = 0; p < a.count; ++p) {
      if (a.hit[p] != 0) continue;
      const __m256d vd_f =
          _mm256_sub_pd(vw_f, _mm256_mul_pd(_mm256_set1_pd(a.p_first[p]),
                                            vsigma));
      __m256d vlb = _mm256_mul_pd(vd_f, vd_f);
      const __m256d vd_l =
          _mm256_sub_pd(vw_l, _mm256_mul_pd(_mm256_set1_pd(a.p_last[p]),
                                            vsigma));
      vlb = _mm256_add_pd(vlb, _mm256_mul_pd(vd_l, vd_l));
      const __m256d vkeep = _mm256_cmp_pd(vlb, vthresh, _CMP_LT_OQ);
      if (_mm256_movemask_pd(vkeep) == 0) continue;

      // Four windows' dots at once, one per lane — the canonical
      // four-partial accumulation order per lane (see ScanBucketAvx2).
      const double* row = a.slab + p * a.stride;
      const double* hb = a.hay + pos;
      __m256d v0 = vzero;
      __m256d v1 = vzero;
      __m256d v2 = vzero;
      __m256d v3 = vzero;
      std::size_t i = 0;
      for (; i + 4 <= n; i += 4) {
        v0 = _mm256_add_pd(
            v0, _mm256_mul_pd(_mm256_loadu_pd(hb + i),
                              _mm256_set1_pd(row[i])));
        v1 = _mm256_add_pd(
            v1, _mm256_mul_pd(_mm256_loadu_pd(hb + i + 1),
                              _mm256_set1_pd(row[i + 1])));
        v2 = _mm256_add_pd(
            v2, _mm256_mul_pd(_mm256_loadu_pd(hb + i + 2),
                              _mm256_set1_pd(row[i + 2])));
        v3 = _mm256_add_pd(
            v3, _mm256_mul_pd(_mm256_loadu_pd(hb + i + 3),
                              _mm256_set1_pd(row[i + 3])));
      }
      for (; i < n; ++i) {
        v0 = _mm256_add_pd(
            v0, _mm256_mul_pd(_mm256_loadu_pd(hb + i),
                              _mm256_set1_pd(row[i])));
      }
      const __m256d vdot =
          _mm256_add_pd(_mm256_add_pd(v0, v1), _mm256_add_pd(v2, v3));

      const __m256d vcross = _mm256_mul_pd(
          _mm256_mul_pd(vtwo, vsigma),
          _mm256_sub_pd(vdot, _mm256_mul_pd(vmu,
                                            _mm256_set1_pd(a.p_sum[p]))));
      const __m256d vd2s = _mm256_max_pd(
          vzero,
          _mm256_add_pd(_mm256_sub_pd(vcsq, vcross),
                        _mm256_mul_pd(_mm256_set1_pd(a.p_sum_sq[p]),
                                      vsig2)));
      const int cand = _mm256_movemask_pd(_mm256_and_pd(
          vkeep, _mm256_cmp_pd(vd2s, vthresh, _CMP_LT_OQ)));
      if (cand != 0) {
        a.hit[p] = 1;
        if (a.first_hit) {
          *a.remaining = 0;
          return;
        }
        if (--*a.remaining == 0) return;
      }
    }
  }
  ScanBucketBelowScalarFrom(a, pos);  // trailing < 4 positions
}

#endif  // RPM_DOT_AVX2_DISPATCH

}  // namespace

PatternStore::PatternStore(const std::vector<ts::Series>& patterns) {
  std::vector<ts::SeriesView> views;
  views.reserve(patterns.size());
  for (const auto& p : patterns) views.emplace_back(p);
  BuildFromViews(views);
}

void PatternStore::Build(const std::vector<PatternContext>& patterns) {
  std::vector<ts::SeriesView> views;
  views.reserve(patterns.size());
  for (const auto& p : patterns) views.emplace_back(p.values);
  BuildFromViews(views);
}

void PatternStore::BuildFromViews(const std::vector<ts::SeriesView>& patterns) {
  buckets_.clear();
  first_.clear();
  last_.clear();
  sum_.clear();
  sum_sq_.clear();
  orig_index_.clear();
  num_patterns_ = patterns.size();
  num_empty_ = 0;

  // Store order: ascending length, insertion order within a length
  // (stable), empty patterns excluded (their slots stay sentinels).
  std::vector<std::pair<std::size_t, std::size_t>> order;  // (length, orig)
  order.reserve(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (patterns[i].empty()) {
      ++num_empty_;
    } else {
      order.emplace_back(patterns[i].size(), i);
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& x, const auto& y) {
                     return x.first < y.first;
                   });

  // Lay out buckets and size the arena.
  std::size_t total = 0;
  for (std::size_t i = 0; i < order.size();) {
    const std::size_t n = order[i].first;
    std::size_t j = i;
    while (j < order.size() && order[j].first == n) ++j;
    Bucket b;
    b.length = n;
    b.padded = PaddedLength(n);
    b.first = i;
    b.count = j - i;
    b.slab = total;
    b.inv_n = 1.0 / static_cast<double>(n);
    total += b.padded * b.count;
    buckets_.push_back(b);
    i = j;
  }

  if (total == 0) {
    arena_ = {nullptr, nullptr};
    return;
  }
  // Row strides are multiples of 8 doubles, so the byte count is a
  // multiple of 64 — the aligned_alloc contract.
  auto* raw = static_cast<double*>(
      std::aligned_alloc(64, total * sizeof(double)));
  arena_ = {raw, +[](double* p) { std::free(p); }};
  std::fill(raw, raw + total, 0.0);  // zero the padding lanes

  const std::size_t stored = order.size();
  first_.resize(stored);
  last_.resize(stored);
  sum_.resize(stored);
  sum_sq_.resize(stored);
  orig_index_.resize(stored);
  for (const Bucket& b : buckets_) {
    for (std::size_t k = 0; k < b.count; ++k) {
      const std::size_t slot = b.first + k;
      const ts::SeriesView p = patterns[order[slot].second];
      double* row = raw + b.slab + k * b.padded;
      std::copy(p.begin(), p.end(), row);
      // Same sequential accumulation as PatternContext, so the sums that
      // feed the closed-form distance are bit-identical to the
      // per-pattern engine's.
      double s = 0.0;
      double ssq = 0.0;
      for (const double v : p) {
        s += v;
        ssq += v * v;
      }
      first_[slot] = p.front();
      last_[slot] = p.back();
      sum_[slot] = s;
      sum_sq_[slot] = ssq;
      orig_index_[slot] = static_cast<std::uint32_t>(order[slot].second);
    }
  }
}

PatternStore::BucketInfo PatternStore::bucket_info(std::size_t b) const {
  const Bucket& bucket = buckets_[b];
  return BucketInfo{bucket.length, bucket.padded, bucket.count};
}

void PatternStore::ScanBucket(const Bucket& bucket,
                              const SeriesContext& series, double* best_sq,
                              std::size_t* best_pos) const {
  // Callers guarantee 2 <= length <= series.size().
  BucketScan a;
  a.hay = series.data().data();
  a.prefix = series.PrefixData();
  a.prefix_sq = series.PrefixSqData();
  a.m = series.size();
  a.n = bucket.length;
  a.inv_n = bucket.inv_n;
  a.slab = arena_.get() + bucket.slab;
  a.stride = bucket.padded;
  a.count = bucket.count;
  a.p_first = first_.data() + bucket.first;
  a.p_last = last_.data() + bucket.first;
  a.p_sum = sum_.data() + bucket.first;
  a.p_sum_sq = sum_sq_.data() + bucket.first;
  a.best_sq = best_sq;
  a.best_pos = best_pos;

  const IsaTier tier = CurrentIsaTier();
#if defined(RPM_DOT_AVX2_DISPATCH)
  if (tier >= IsaTier::kAvx2) {
    a.dot = internal::VectorDotForLength(a.n);
    if (tier == IsaTier::kAvx512 && IsaTierAvailable(IsaTier::kAvx512)) {
      ScanBucketAvx512(a);
    } else {
      ScanBucketAvx2(a);
    }
    return;
  }
#else
  (void)tier;
#endif
  a.dot = &internal::DotBase;
  ScanBucketScalarFrom(a, 0);
}

std::size_t PatternStore::MatchAllImpl(const SeriesContext& series,
                                       MatchScratch* scratch,
                                       const std::vector<double>* seeds,
                                       std::vector<BestMatch>* out) const {
  out->assign(num_patterns_, BestMatch{});  // all slots start unfound
  const std::size_t stored = orig_index_.size();
  if (stored == 0) return 0;
  const std::size_t m = series.size();
  std::size_t buckets_scanned = 0;

  scratch->best_sq.assign(stored,
                          std::numeric_limits<double>::infinity());
  scratch->best_pos.assign(stored, kNpos);
  double* best_sq = scratch->best_sq.data();
  std::size_t* best_pos = scratch->best_pos.data();
  if (seeds != nullptr) {
    // Seed each slot in the scan's length-scaled squared space
    // (n * distance^2), preserving infinite seeds as-is — exactly the
    // cutoff conversion of the per-pattern seeded scan (matcher.cc
    // BatchedBestMatch with cutoff).
    for (const Bucket& b : buckets_) {
      const double nd = static_cast<double>(b.length);
      for (std::size_t k = 0; k < b.count; ++k) {
        const std::size_t slot = b.first + k;
        const double s = (*seeds)[orig_index_[slot]];
        best_sq[slot] = std::isinf(s) ? s : s * s * nd;
      }
    }
  }

  for (const Bucket& b : buckets_) {
    if (b.length > m || m == 0) continue;  // sentinel slots
    ++buckets_scanned;
    if (b.length == 1) {
      // Every single-point window is exactly flat (z-value 0), so all
      // positions tie at distance |p| and the first window wins — the
      // same special case the per-pattern scan applies, including its
      // seed test.
      for (std::size_t k = 0; k < b.count; ++k) {
        const double p = *Row(b, k);
        if (p * p < best_sq[b.first + k]) {
          best_sq[b.first + k] = p * p;
          best_pos[b.first + k] = 0;
        }
      }
      continue;
    }
    ScanBucket(b, series, best_sq + b.first, best_pos + b.first);
  }

  for (const Bucket& b : buckets_) {
    for (std::size_t k = 0; k < b.count; ++k) {
      const std::size_t slot = b.first + k;
      if (best_pos[slot] == kNpos) continue;
      BestMatch& bm = (*out)[orig_index_[slot]];
      bm.position = best_pos[slot];
      bm.distance = std::sqrt(best_sq[slot] * b.inv_n);
    }
  }
  return buckets_scanned;
}

std::size_t PatternStore::MatchAll(const SeriesContext& series,
                                   MatchScratch* scratch,
                                   std::vector<BestMatch>* out) const {
  return MatchAllImpl(series, scratch, nullptr, out);
}

std::size_t PatternStore::MatchAllSeeded(const SeriesContext& series,
                                         MatchScratch* scratch,
                                         const std::vector<double>& seeds,
                                         std::vector<BestMatch>* out) const {
  return MatchAllImpl(series, scratch, &seeds, out);
}

bool PatternStore::AnyBelow(const SeriesContext& series,
                            MatchScratch* scratch, double tau,
                            std::vector<std::uint8_t>* below) const {
  if (below != nullptr) below->assign(num_patterns_, 0);
  const std::size_t stored = orig_index_.size();
  if (stored == 0) return false;
  const std::size_t m = series.size();

  scratch->below.assign(stored, 0);
  std::uint8_t* hit = scratch->below.data();
  const bool first_hit = below == nullptr;
  bool any = false;

  for (const Bucket& b : buckets_) {
    if (b.length > m || m == 0) continue;  // decide false, like the scan
    // Uniform per-bucket seed in length-scaled squared space, with the
    // per-pattern scan's sign-preserving infinity passthrough.
    const double seed_sq =
        std::isinf(tau) ? tau
                        : tau * tau * static_cast<double>(b.length);
    if (b.length == 1) {
      // Single-point windows are exactly flat: the decision is the
      // per-pattern scan's `p*p < seed_sq` special case.
      for (std::size_t k = 0; k < b.count; ++k) {
        const double p = *Row(b, k);
        if (p * p < seed_sq) {
          hit[b.first + k] = 1;
          any = true;
          if (first_hit) return true;
        }
      }
      continue;
    }

    std::size_t remaining = b.count;
    BelowScan a;
    a.hay = series.data().data();
    a.prefix = series.PrefixData();
    a.prefix_sq = series.PrefixSqData();
    a.m = m;
    a.n = b.length;
    a.inv_n = b.inv_n;
    a.slab = arena_.get() + b.slab;
    a.stride = b.padded;
    a.count = b.count;
    a.p_first = first_.data() + b.first;
    a.p_last = last_.data() + b.first;
    a.p_sum = sum_.data() + b.first;
    a.p_sum_sq = sum_sq_.data() + b.first;
    a.seed_sq = seed_sq;
    a.hit = hit + b.first;
    a.remaining = &remaining;
    a.first_hit = first_hit;

    const IsaTier tier = CurrentIsaTier();
#if defined(RPM_DOT_AVX2_DISPATCH)
    if (tier >= IsaTier::kAvx2) {
      a.dot = internal::VectorDotForLength(a.n);
      ScanBucketBelowAvx2(a);
    } else {
      a.dot = &internal::DotBase;
      ScanBucketBelowScalarFrom(a, 0);
    }
#else
    (void)tier;
    a.dot = &internal::DotBase;
    ScanBucketBelowScalarFrom(a, 0);
#endif
    if (remaining < b.count) {
      any = true;
      if (first_hit) return true;
    }
  }

  if (below != nullptr) {
    for (const Bucket& b : buckets_) {
      for (std::size_t k = 0; k < b.count; ++k) {
        const std::size_t slot = b.first + k;
        (*below)[orig_index_[slot]] = hit[slot];
      }
    }
  }
  return any;
}

void PatternStore::MatchBucket(std::size_t b, const SeriesContext& series,
                               BestMatch* out) const {
  const Bucket& bucket = buckets_[b];
  std::vector<double> best_sq(bucket.count,
                              std::numeric_limits<double>::infinity());
  std::vector<std::size_t> best_pos(bucket.count, kNpos);
  const std::size_t m = series.size();
  if (bucket.length <= m && m != 0) {
    if (bucket.length == 1) {
      for (std::size_t k = 0; k < bucket.count; ++k) {
        const double p = *Row(bucket, k);
        if (p * p < std::numeric_limits<double>::infinity()) {
          best_sq[k] = p * p;
          best_pos[k] = 0;
        }
      }
    } else {
      ScanBucket(bucket, series, best_sq.data(), best_pos.data());
    }
  }
  for (std::size_t k = 0; k < bucket.count; ++k) {
    out[k] = BestMatch{};
    if (best_pos[k] == kNpos) continue;
    out[k].position = best_pos[k];
    out[k].distance = std::sqrt(best_sq[k] * bucket.inv_n);
  }
}

}  // namespace rpm::distance
