// Internal header: the canonical dot-product kernels shared by the
// per-pattern scan (matcher.cc) and the SoA pattern store
// (pattern_store.cc). Not part of the public API.
//
// THE PINNED ACCUMULATION ORDER. Every distance the engine reports
// flows through one dot product whose summation order is fixed across
// all ISA tiers:
//
//   * four partial sums s0..s3; element i of the stride-4 body
//     accumulates into s(i mod 4);
//   * the tail (n mod 4 trailing elements) accumulates into s0, in
//     index order;
//   * the partial sums combine as the fixed tree (s0 + s1) + (s2 + s3).
//
// The scalar/SSE2 form, the AVX2 form, and every length-specialized
// unrolled form below apply exactly this order with explicit
// mul-then-add arithmetic (never FMA, which rounds once instead of
// twice), so all of them return bit-identical doubles for the same
// inputs. Any new kernel variant must reproduce the same order — the
// cross-tier golden tests (pattern_store_test) and the checksum_drift
// assertion in `micro_kernels --json` both pin it.

#ifndef RPM_DISTANCE_KERNEL_COMMON_H_
#define RPM_DISTANCE_KERNEL_COMMON_H_

#include <cstddef>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define RPM_DOT_AVX2_DISPATCH 1
#endif

namespace rpm::distance::internal {

// Baseline-ISA form of the canonical dot (SSE2 pairs {s0,s1}/{s2,s3}
// when available, plain scalars otherwise). The explicit partial sums
// also free the scalar loop from serializing on one accumulator's add
// latency.
inline double DotBase(const double* a, const double* b, std::size_t n) {
#if defined(__SSE2__)
  __m128d va = _mm_setzero_pd();  // lanes {s0, s1}
  __m128d vb = _mm_setzero_pd();  // lanes {s2, s3}
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    va = _mm_add_pd(va, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    vb = _mm_add_pd(
        vb, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  double s0 = _mm_cvtsd_f64(va);
  double s1 = _mm_cvtsd_f64(_mm_unpackhi_pd(va, va));
  double s2 = _mm_cvtsd_f64(vb);
  double s3 = _mm_cvtsd_f64(_mm_unpackhi_pd(vb, vb));
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
#else
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
#endif
}

#if defined(RPM_DOT_AVX2_DISPATCH)
// One ymm register holds the same four partial sums {s0, s1, s2, s3}, so
// the per-lane accumulation and the final combine are identical to the
// base path — only the instruction count halves. always_inline keeps the
// AVX2 scan free of per-window call overhead; legal because every direct
// caller is itself compiled for AVX2 (or a superset).
__attribute__((target("avx2"), always_inline)) inline double DotAvx2Impl(
    const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();  // lanes {s0, s1, s2, s3}
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  for (; i < n; ++i) s[0] += a[i] * b[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}

// Out-of-line wrapper for baseline-ISA callers, which cannot inline AVX2
// code into themselves.
__attribute__((target("avx2"))) inline double DotAvx2(const double* a,
                                                      const double* b,
                                                      std::size_t n) {
  return DotAvx2Impl(a, b, n);
}

// Length-specialized form: `kBlocks` stride-4 iterations are known at
// compile time, so the body unrolls completely — no loop-count branches
// in the hot path of short-pattern buckets. Same lanes, same tail rule,
// same combine tree as DotAvx2Impl, hence bit-identical.
template <int kBlocks>
__attribute__((target("avx2"))) inline double DotAvx2Fixed(const double* a,
                                                           const double* b,
                                                           std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
#pragma GCC unroll 16
  for (int k = 0; k < kBlocks; ++k) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a + 4 * k),
                                           _mm256_loadu_pd(b + 4 * k)));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  for (std::size_t i = 4 * kBlocks; i < n; ++i) s[0] += a[i] * b[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}
#endif  // RPM_DOT_AVX2_DISPATCH

/// Dot kernel signature shared by all variants.
using DotFn = double (*)(const double*, const double*, std::size_t);

/// The vector-tier dot kernel for patterns of length `n`: a fully
/// unrolled specialization when one exists (n <= 64), the generic AVX2
/// loop otherwise, and the base kernel on builds without AVX2 dispatch.
/// Every returned kernel computes the canonical order, so the choice is
/// purely a speed decision.
inline DotFn VectorDotForLength(std::size_t n) {
#if defined(RPM_DOT_AVX2_DISPATCH)
  switch (n / 4) {
    case 0:  // n < 4: tail-only
      return &DotAvx2Fixed<0>;
    case 1:
      return &DotAvx2Fixed<1>;
    case 2:
      return &DotAvx2Fixed<2>;
    case 3:
      return &DotAvx2Fixed<3>;
    case 4:
      return &DotAvx2Fixed<4>;
    case 5:
      return &DotAvx2Fixed<5>;
    case 6:
      return &DotAvx2Fixed<6>;
    case 7:
      return &DotAvx2Fixed<7>;
    case 8:
      return &DotAvx2Fixed<8>;
    case 9:
      return &DotAvx2Fixed<9>;
    case 10:
      return &DotAvx2Fixed<10>;
    case 11:
      return &DotAvx2Fixed<11>;
    case 12:
      return &DotAvx2Fixed<12>;
    case 13:
      return &DotAvx2Fixed<13>;
    case 14:
      return &DotAvx2Fixed<14>;
    case 15:
      return &DotAvx2Fixed<15>;
    case 16:
      return &DotAvx2Fixed<16>;
    default:
      return &DotAvx2;
  }
#else
  (void)n;
  return &DotBase;
#endif
}

}  // namespace rpm::distance::internal

#endif  // RPM_DISTANCE_KERNEL_COMMON_H_
