// Euclidean distance kernels and the early-abandoning best-match
// subsequence scan (Section 2.1 "closest match", Section 5.3 early
// abandoning). These are the hot loops of both RPM's transform and the
// shapelet baselines.

#ifndef RPM_DISTANCE_EUCLIDEAN_H_
#define RPM_DISTANCE_EUCLIDEAN_H_

#include <cstddef>
#include <limits>

#include "ts/series.h"

namespace rpm::distance {

/// Squared Euclidean distance between equal-length views.
/// Precondition: a.size() == b.size().
double SquaredEuclidean(ts::SeriesView a, ts::SeriesView b);

/// Euclidean distance between equal-length views.
double Euclidean(ts::SeriesView a, ts::SeriesView b);

/// Squared Euclidean distance that abandons (returning a value >= `cutoff`)
/// as soon as the running sum exceeds `cutoff`.
double SquaredEuclideanEarlyAbandon(ts::SeriesView a, ts::SeriesView b,
                                    double cutoff);

/// Length-normalized Euclidean distance: ||a-b|| / sqrt(n). Allows
/// comparing match quality across patterns of different lengths, which RPM
/// needs because representative patterns vary in length.
double NormalizedEuclidean(ts::SeriesView a, ts::SeriesView b);

/// NormalizedEuclidean for callers that only act on values strictly below
/// `cutoff`: abandons and returns +inf once the partial sum alone proves
/// the result >= cutoff. The accumulation order matches
/// NormalizedEuclidean and partial sums of non-negative terms are
/// monotone in floating point, so `result < cutoff` decides identically
/// to the unbounded form, and any finite return value is bit-identical.
double NormalizedEuclideanBounded(ts::SeriesView a, ts::SeriesView b,
                                  double cutoff);

/// Result of a best-match scan.
struct BestMatch {
  /// Start offset of the closest window in the haystack; npos when the
  /// haystack is shorter than the pattern.
  std::size_t position = npos;
  /// Length-normalized z-normalized Euclidean distance of that window.
  double distance = std::numeric_limits<double>::infinity();

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  bool found() const { return position != npos; }
};

/// Finds the closest match of `pattern` inside `haystack` (Definition
/// "closest match"): every window of `haystack` of length |pattern| is
/// z-normalized and compared to the (already z-normalized) pattern under
/// length-normalized Euclidean distance, with early abandoning against the
/// best-so-far. Returns an unfound BestMatch when |haystack| < |pattern|
/// or the pattern is empty.
///
/// Implemented as a per-call wrapper over the batched kernel
/// (distance/matcher.h); results are bit-identical to BatchedBestMatch.
/// Callers scanning many pattern x series pairs should build the contexts
/// once via BatchMatcher / SeriesContext instead.
BestMatch FindBestMatch(ts::SeriesView pattern, ts::SeriesView haystack);

/// The pre-batching reference implementation (per-call sort, rolling
/// window moments, no lower-bound cascade). Kept as the ground truth for
/// the matcher equivalence tests and the bench/micro_kernels speedup
/// baseline; not used by the pipeline.
BestMatch FindBestMatchNaive(ts::SeriesView pattern, ts::SeriesView haystack);

/// Convenience: the closest-match distance only (infinity when unfound).
double BestMatchDistance(ts::SeriesView pattern, ts::SeriesView haystack);

}  // namespace rpm::distance

#endif  // RPM_DISTANCE_EUCLIDEAN_H_
