// Dynamic Time Warping with an optional Sakoe-Chiba band, plus the
// LB_Keogh lower bound. Substrate of the NN-DTWB baseline (Table 1):
// "DTW with the best warping window" searches band widths on the training
// set; LB_Keogh + early abandoning keep the search tractable.

#ifndef RPM_DISTANCE_DTW_H_
#define RPM_DISTANCE_DTW_H_

#include <cstddef>
#include <limits>

#include "ts/series.h"

namespace rpm::distance {

/// DTW distance (sqrt of accumulated squared point costs) with a
/// Sakoe-Chiba band of half-width `window` (in points). `window` >= the
/// length difference is enforced internally; pass
/// `kUnconstrained` for full DTW.
/// `cutoff`: computation abandons early and returns +inf once every cell
/// of a row exceeds cutoff^2.
inline constexpr std::size_t kUnconstrained = static_cast<std::size_t>(-1);

double Dtw(ts::SeriesView a, ts::SeriesView b,
           std::size_t window = kUnconstrained,
           double cutoff = std::numeric_limits<double>::infinity());

/// Upper/lower envelope of `s` for a band half-width `window`
/// (Keogh & Ratanamahatana 2005). upper[i] = max(s[i-w..i+w]).
struct Envelope {
  ts::Series upper;
  ts::Series lower;
};
Envelope MakeEnvelope(ts::SeriesView s, std::size_t window);

/// LB_Keogh lower bound of DTW(query, candidate) given the candidate's
/// precomputed envelope. Requires equal lengths; returns the sqrt of the
/// accumulated squared out-of-envelope mass.
double LbKeogh(ts::SeriesView query, const Envelope& candidate_envelope);

}  // namespace rpm::distance

#endif  // RPM_DISTANCE_DTW_H_
