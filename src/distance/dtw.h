// Dynamic Time Warping with an optional Sakoe-Chiba band, plus the
// UCR-suite lower-bound cascade (Rakthanmanon et al., KDD 2012):
// O(1) endpoint bound -> LB_Keogh(query, candidate) -> LB_Keogh
// reversed -> early-abandoning banded DTW. Substrate of the NN-DTWB
// baseline (Table 1): "DTW with the best warping window" searches band
// widths on the training set; the cascade keeps both the LOOCV search
// and classification tractable.
//
// Every bound is checked against the caller's best-so-far in sqrt space,
// and a candidate is skipped only when a bound proves DTW >= cutoff — so
// a nearest-neighbor search through DtwCascade returns bit-identical
// neighbors and distances to one running full DTW (asserted by
// dtw_cascade_test).

#ifndef RPM_DISTANCE_DTW_H_
#define RPM_DISTANCE_DTW_H_

#include <cstddef>
#include <limits>

#include "ts/series.h"

namespace rpm::distance {

/// DTW distance (sqrt of accumulated squared point costs) with a
/// Sakoe-Chiba band of half-width `window` (in points). `window` >= the
/// length difference is enforced internally; pass
/// `kUnconstrained` for full DTW.
/// `cutoff`: computation abandons early and returns +inf once every cell
/// of a row exceeds cutoff^2.
inline constexpr std::size_t kUnconstrained = static_cast<std::size_t>(-1);

double Dtw(ts::SeriesView a, ts::SeriesView b,
           std::size_t window = kUnconstrained,
           double cutoff = std::numeric_limits<double>::infinity());

/// Upper/lower envelope of `s` for a band half-width `window`
/// (Keogh & Ratanamahatana 2005). upper[i] = max(s[i-w..i+w]).
/// Computed with Lemire's monotonic-deque streaming max/min in O(n)
/// independent of the window; values are exact selections from `s`, so
/// the result matches the naive per-position scan bit for bit.
struct Envelope {
  ts::Series upper;
  ts::Series lower;
};
Envelope MakeEnvelope(ts::SeriesView s, std::size_t window);

/// LB_Keogh lower bound of DTW(query, candidate) given the candidate's
/// precomputed envelope. Requires equal lengths; returns the sqrt of the
/// accumulated squared out-of-envelope mass. The envelope must have been
/// built with a window >= the DTW band for the bound to hold.
double LbKeogh(ts::SeriesView query, const Envelope& candidate_envelope);

/// Squared-space LB_Keogh (no final sqrt); same accumulation order.
double LbKeoghSquared(ts::SeriesView query,
                      const Envelope& candidate_envelope);

/// O(1) lower bound on DTW(a, b)^2 from the band-independent endpoint
/// alignments: any warping path matches a.front() with b.front() and
/// a.back() with b.back() (the two coincide when both series have one
/// point, in which case the larger single term is used).
double EndpointLowerBoundSquared(ts::SeriesView a, ts::SeriesView b);

/// LB-cascaded DTW: runs the endpoint bound, then LB_Keogh in both
/// directions (when the matching envelope is supplied and lengths are
/// equal), and falls through to early-abandoning banded DTW. Returns
/// +inf as soon as any bound proves DTW(a, b) >= cutoff; otherwise the
/// exact Dtw(a, b, window, cutoff) value. Either envelope pointer may be
/// null to skip that direction; envelopes must have been built with
/// `window`.
double DtwCascade(ts::SeriesView a, ts::SeriesView b,
                  const Envelope* a_envelope, const Envelope* b_envelope,
                  std::size_t window,
                  double cutoff = std::numeric_limits<double>::infinity());

}  // namespace rpm::distance

#endif  // RPM_DISTANCE_DTW_H_
