// Runtime ISA dispatch for the distance kernels. One process-wide tier
// is resolved at first use from CPUID, optionally overridden by the
// RPM_FORCE_ISA environment variable ({scalar, avx2, avx512}) so CI and
// benches can pin a tier on any host. The resolution is logged to
// stderr exactly once so a bench or CI log always records which tier
// produced its numbers.
//
// Every tier computes bit-identical results (the kernels share one
// canonical accumulation order and re-gate vector decisions through the
// scalar rule), so the tier only ever changes speed — never output.
// That invariant is what lets the golden matcher tests sweep tiers via
// ForceIsaTier and assert exact equality.

#ifndef RPM_DISTANCE_ISA_DISPATCH_H_
#define RPM_DISTANCE_ISA_DISPATCH_H_

namespace rpm::distance {

/// Kernel instruction-set tiers, ordered from most to least portable.
enum class IsaTier {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Human-readable tier name ("scalar", "avx2", "avx512").
const char* IsaTierName(IsaTier tier);

/// True when this build *and* this CPU can run `tier`.
bool IsaTierAvailable(IsaTier tier);

/// The tier the matcher kernels dispatch on: the best available tier,
/// unless RPM_FORCE_ISA pins a lower one or ForceIsaTier overrides it.
/// Resolved once (and logged once) on first call; subsequent calls are a
/// relaxed atomic load.
IsaTier CurrentIsaTier();

/// Test/bench hook: pin the dispatch tier in-process, bypassing the
/// environment. Forcing a tier the host cannot run falls back to the
/// best available one (same clamping RPM_FORCE_ISA gets). Pass
/// ResetIsaTier() to return to the startup resolution. Not thread-safe
/// against concurrent scans; call between scans only.
void ForceIsaTier(IsaTier tier);
void ResetIsaTier();

}  // namespace rpm::distance

#endif  // RPM_DISTANCE_ISA_DISPATCH_H_
