#include "distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rpm::distance {

double Dtw(ts::SeriesView a, ts::SeriesView b, std::size_t window,
           double cutoff) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) {
    return (n == m) ? 0.0 : std::numeric_limits<double>::infinity();
  }
  const std::size_t diff = n > m ? n - m : m - n;
  std::size_t w = window == kUnconstrained ? std::max(n, m) : window;
  w = std::max(w, diff);

  const double inf = std::numeric_limits<double>::infinity();
  const double cutoff_sq =
      std::isinf(cutoff) ? inf : cutoff * cutoff;
  std::vector<double> prev(m + 1, inf);
  std::vector<double> curr(m + 1, inf);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), inf);
    const std::size_t j_lo = i > w ? i - w : 1;
    const std::size_t j_hi = std::min(m, i + w);
    double row_min = inf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double d = a[i - 1] - b[j - 1];
      const double step =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      if (std::isinf(step)) continue;
      curr[j] = step + d * d;
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > cutoff_sq) return inf;
    std::swap(prev, curr);
  }
  return std::sqrt(prev[m]);
}

Envelope MakeEnvelope(ts::SeriesView s, std::size_t window) {
  const std::size_t n = s.size();
  Envelope env;
  env.upper.resize(n);
  env.lower.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= window ? i - window : 0;
    const std::size_t hi = std::min(n - 1, i + window);
    double mx = s[lo];
    double mn = s[lo];
    for (std::size_t j = lo + 1; j <= hi; ++j) {
      mx = std::max(mx, s[j]);
      mn = std::min(mn, s[j]);
    }
    env.upper[i] = mx;
    env.lower[i] = mn;
  }
  return env;
}

double LbKeogh(ts::SeriesView query, const Envelope& candidate_envelope) {
  double acc = 0.0;
  const std::size_t n =
      std::min(query.size(), candidate_envelope.upper.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double v = query[i];
    if (v > candidate_envelope.upper[i]) {
      const double d = v - candidate_envelope.upper[i];
      acc += d * d;
    } else if (v < candidate_envelope.lower[i]) {
      const double d = v - candidate_envelope.lower[i];
      acc += d * d;
    }
  }
  return std::sqrt(acc);
}

}  // namespace rpm::distance
