#include "distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rpm::distance {

double Dtw(ts::SeriesView a, ts::SeriesView b, std::size_t window,
           double cutoff) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) {
    return (n == m) ? 0.0 : std::numeric_limits<double>::infinity();
  }
  const std::size_t diff = n > m ? n - m : m - n;
  std::size_t w = window == kUnconstrained ? std::max(n, m) : window;
  w = std::max(w, diff);

  const double inf = std::numeric_limits<double>::infinity();
  const double cutoff_sq =
      std::isinf(cutoff) ? inf : cutoff * cutoff;
  std::vector<double> prev(m + 1, inf);
  std::vector<double> curr(m + 1, inf);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), inf);
    const std::size_t j_lo = i > w ? i - w : 1;
    const std::size_t j_hi = std::min(m, i + w);
    double row_min = inf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double d = a[i - 1] - b[j - 1];
      const double step =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      if (std::isinf(step)) continue;
      curr[j] = step + d * d;
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > cutoff_sq) return inf;
    std::swap(prev, curr);
  }
  return std::sqrt(prev[m]);
}

Envelope MakeEnvelope(ts::SeriesView s, std::size_t window) {
  const std::size_t n = s.size();
  Envelope env;
  env.upper.resize(n);
  env.lower.resize(n);
  if (n == 0) return env;
  const std::size_t w = std::min(window, n - 1);

  // Lemire streaming max/min: each deque holds indices whose values are
  // monotone from front to back, so the front is always the extremum of
  // the current window. Every index enters and leaves each deque once —
  // O(n) total regardless of w. The emitted values are selections from
  // `s`, identical to the naive per-position scan.
  std::vector<std::size_t> up(n);
  std::vector<std::size_t> lo(n);
  std::size_t up_head = 0;
  std::size_t up_tail = 0;  // [head, tail) live region
  std::size_t lo_head = 0;
  std::size_t lo_tail = 0;
  for (std::size_t i = 0; i < n + w; ++i) {
    if (i < n) {
      while (up_tail > up_head && s[up[up_tail - 1]] <= s[i]) --up_tail;
      up[up_tail++] = i;
      while (lo_tail > lo_head && s[lo[lo_tail - 1]] >= s[i]) --lo_tail;
      lo[lo_tail++] = i;
    }
    if (i >= w) {
      const std::size_t p = i - w;  // window is [p - w, p + w]
      while (up[up_head] + w < p) ++up_head;
      while (lo[lo_head] + w < p) ++lo_head;
      env.upper[p] = s[up[up_head]];
      env.lower[p] = s[lo[lo_head]];
    }
  }
  return env;
}

double LbKeoghSquared(ts::SeriesView query,
                      const Envelope& candidate_envelope) {
  double acc = 0.0;
  const std::size_t n =
      std::min(query.size(), candidate_envelope.upper.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double v = query[i];
    if (v > candidate_envelope.upper[i]) {
      const double d = v - candidate_envelope.upper[i];
      acc += d * d;
    } else if (v < candidate_envelope.lower[i]) {
      const double d = v - candidate_envelope.lower[i];
      acc += d * d;
    }
  }
  return acc;
}

double LbKeogh(ts::SeriesView query, const Envelope& candidate_envelope) {
  return std::sqrt(LbKeoghSquared(query, candidate_envelope));
}

double EndpointLowerBoundSquared(ts::SeriesView a, ts::SeriesView b) {
  if (a.empty() || b.empty()) return 0.0;
  const double d0 = a.front() - b.front();
  const double d1 = a.back() - b.back();
  if (a.size() == 1 && b.size() == 1) return d0 * d0;  // same cell
  return d0 * d0 + d1 * d1;
}

double DtwCascade(ts::SeriesView a, ts::SeriesView b,
                  const Envelope* a_envelope, const Envelope* b_envelope,
                  std::size_t window, double cutoff) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (!std::isinf(cutoff) && !a.empty() && !b.empty()) {
    // All pruning decisions compare sqrt(bound^2) against the cutoff —
    // the exact quantity the final Dtw value is expressed in — so a
    // candidate is dropped only when DTW >= cutoff provably holds and a
    // best-so-far search stays decision-identical to full DTW.
    if (std::sqrt(EndpointLowerBoundSquared(a, b)) >= cutoff) return kInf;
    if (a.size() == b.size()) {
      if (b_envelope != nullptr &&
          std::sqrt(LbKeoghSquared(a, *b_envelope)) >= cutoff) {
        return kInf;
      }
      if (a_envelope != nullptr &&
          std::sqrt(LbKeoghSquared(b, *a_envelope)) >= cutoff) {
        return kInf;
      }
    }
  }
  return Dtw(a, b, window, cutoff);
}

}  // namespace rpm::distance
