#include "distance/isa_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rpm::distance {
namespace {

#if defined(__x86_64__) && defined(__GNUC__)
#define RPM_ISA_X86_DISPATCH 1
#endif

bool CpuHasAvx2() {
#if defined(RPM_ISA_X86_DISPATCH)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(RPM_ISA_X86_DISPATCH)
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
#else
  return false;
#endif
}

IsaTier BestAvailable() {
  if (CpuHasAvx512()) return IsaTier::kAvx512;
  if (CpuHasAvx2()) return IsaTier::kAvx2;
  return IsaTier::kScalar;
}

// Startup resolution: best available, clamped by RPM_FORCE_ISA. Logged
// to stderr exactly once so bench/CI output records the tier.
IsaTier ResolveStartupTier() {
  const IsaTier best = BestAvailable();
  IsaTier tier = best;
  const char* forced = std::getenv("RPM_FORCE_ISA");
  bool from_env = false;
  if (forced != nullptr && forced[0] != '\0') {
    if (std::strcmp(forced, "scalar") == 0) {
      tier = IsaTier::kScalar;
      from_env = true;
    } else if (std::strcmp(forced, "avx2") == 0) {
      tier = IsaTier::kAvx2;
      from_env = true;
    } else if (std::strcmp(forced, "avx512") == 0) {
      tier = IsaTier::kAvx512;
      from_env = true;
    } else {
      std::fprintf(stderr,
                   "[rpm] RPM_FORCE_ISA=%s not recognized "
                   "(want scalar|avx2|avx512); using %s\n",
                   forced, IsaTierName(best));
    }
    if (from_env && !IsaTierAvailable(tier)) {
      std::fprintf(stderr,
                   "[rpm] RPM_FORCE_ISA=%s unavailable on this host; "
                   "falling back to %s\n",
                   forced, IsaTierName(best));
      tier = best;
      from_env = false;
    }
  }
  std::fprintf(stderr, "[rpm] matcher ISA tier: %s%s\n", IsaTierName(tier),
               from_env ? " (forced via RPM_FORCE_ISA)" : "");
  return tier;
}

// Encoded tier + 1 so 0 means "not yet resolved".
std::atomic<int> g_tier{0};

// The once-only startup resolution (CPUID + RPM_FORCE_ISA + log line),
// shared by CurrentIsaTier and ResetIsaTier so a ForceIsaTier call can
// never masquerade as the startup value.
IsaTier StartupTier() {
  static const IsaTier tier = ResolveStartupTier();
  return tier;
}

}  // namespace

const char* IsaTierName(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool IsaTierAvailable(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return true;
    case IsaTier::kAvx2:
      return CpuHasAvx2();
    case IsaTier::kAvx512:
      return CpuHasAvx512();
  }
  return false;
}

IsaTier CurrentIsaTier() {
  int enc = g_tier.load(std::memory_order_relaxed);
  if (enc == 0) {
    // Resolve once; concurrent first calls resolve the same value, so
    // the race on who stores first is benign.
    enc = static_cast<int>(StartupTier()) + 1;
    int expected = 0;
    g_tier.compare_exchange_strong(expected, enc, std::memory_order_relaxed);
    enc = g_tier.load(std::memory_order_relaxed);
  }
  return static_cast<IsaTier>(enc - 1);
}

void ForceIsaTier(IsaTier tier) {
  StartupTier();  // pin the startup resolution (and its log line) first
  if (!IsaTierAvailable(tier)) tier = BestAvailable();
  g_tier.store(static_cast<int>(tier) + 1, std::memory_order_relaxed);
}

void ResetIsaTier() {
  g_tier.store(static_cast<int>(StartupTier()) + 1,
               std::memory_order_relaxed);
}

}  // namespace rpm::distance
