// Approximate best-match scan (Section 5.3 notes the exact subsequence
// matching is the training bottleneck and that "other options are
// possible such as approximate matching"). Strategy: a cheap PAA-space
// scan over every window — O(paa_size) per position via prefix sums —
// ranks candidate positions; only the top-k are refined with the exact
// z-normalized Euclidean distance. With paa_size << window this cuts the
// scan cost by roughly window/paa_size at a small accuracy risk.

#ifndef RPM_DISTANCE_APPROXIMATE_H_
#define RPM_DISTANCE_APPROXIMATE_H_

#include <cstddef>

#include "distance/euclidean.h"
#include "ts/series.h"

namespace rpm::distance {

struct ApproxMatchOptions {
  /// PAA segments used for the coarse scan.
  std::size_t paa_size = 8;
  /// Number of coarse candidates refined exactly.
  std::size_t refine_top_k = 10;
};

/// Approximate closest match of `pattern` (z-normalized) in `haystack`.
/// The returned distance is exact for the returned position; the position
/// itself may differ from the true best when the PAA ranking misleads.
/// Degenerate inputs behave like FindBestMatch.
BestMatch FindBestMatchApprox(ts::SeriesView pattern,
                              ts::SeriesView haystack,
                              const ApproxMatchOptions& options = {});

}  // namespace rpm::distance

#endif  // RPM_DISTANCE_APPROXIMATE_H_
