#include "distance/approximate.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sax/sax.h"
#include "ts/znorm.h"

namespace rpm::distance {

BestMatch FindBestMatchApprox(ts::SeriesView pattern,
                              ts::SeriesView haystack,
                              const ApproxMatchOptions& options) {
  BestMatch best;
  const std::size_t n = pattern.size();
  if (n == 0 || haystack.size() < n) return best;
  const std::size_t paa =
      std::clamp<std::size_t>(options.paa_size, 1, n);
  if (paa >= n || options.refine_top_k == 0) {
    return FindBestMatch(pattern, haystack);  // No compression to exploit.
  }

  // Pattern PAA (pattern is already z-normalized).
  const ts::Series pattern_paa = sax::Paa(pattern, paa);

  // Prefix sums for O(1) window moments and segment sums.
  const std::size_t m = haystack.size();
  std::vector<double> prefix(m + 1, 0.0);
  std::vector<double> prefix_sq(m + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    prefix[i + 1] = prefix[i] + haystack[i];
    prefix_sq[i + 1] = prefix_sq[i] + haystack[i] * haystack[i];
  }
  const double inv_n = 1.0 / static_cast<double>(n);

  // Integer segment boundaries relative to the window start.
  std::vector<std::size_t> bounds(paa + 1);
  for (std::size_t s = 0; s <= paa; ++s) {
    bounds[s] = s * n / paa;
  }

  // Coarse scan: PAA-space length-normalized distance per position.
  const std::size_t positions = m - n + 1;
  std::vector<std::pair<double, std::size_t>> coarse;
  coarse.reserve(positions);
  for (std::size_t pos = 0; pos < positions; ++pos) {
    const double sum = prefix[pos + n] - prefix[pos];
    const double sum_sq = prefix_sq[pos + n] - prefix_sq[pos];
    const double mu = sum * inv_n;
    const double var = std::max(0.0, sum_sq * inv_n - mu * mu);
    const double sigma = std::sqrt(var);
    const double inv_sigma =
        sigma < ts::kFlatThreshold ? 1.0 : 1.0 / sigma;
    double acc = 0.0;
    for (std::size_t s = 0; s < paa; ++s) {
      const std::size_t lo = pos + bounds[s];
      const std::size_t hi = pos + bounds[s + 1];
      const double seg_mean = (prefix[hi] - prefix[lo]) /
                              static_cast<double>(hi - lo);
      const double z = (seg_mean - mu) * inv_sigma;
      const double d = z - pattern_paa[s];
      acc += d * d;
    }
    coarse.emplace_back(acc, pos);
  }

  // Refine the k best coarse candidates exactly.
  const std::size_t k = std::min(options.refine_top_k, coarse.size());
  std::partial_sort(coarse.begin(),
                    coarse.begin() + static_cast<std::ptrdiff_t>(k),
                    coarse.end());
  ts::Series window;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t pos = coarse[i].second;
    window.assign(haystack.begin() + static_cast<std::ptrdiff_t>(pos),
                  haystack.begin() + static_cast<std::ptrdiff_t>(pos + n));
    ts::ZNormalizeInPlace(window);
    const double d = NormalizedEuclidean(window, pattern);
    if (d < best.distance) {
      best.distance = d;
      best.position = pos;
    }
  }
  return best;
}

}  // namespace rpm::distance
