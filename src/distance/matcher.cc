#include "distance/matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "ts/znorm.h"

namespace rpm::distance {
namespace {

// Dot product with four fixed partial sums combined as
// (s0 + s1) + (s2 + s3): the association is spelled out, so the scalar
// and SSE2 paths produce bit-identical results (the compiler cannot
// reassociate a strict FP reduction itself, which also means the scalar
// loop would otherwise serialize on the single accumulator's add
// latency).
inline double Dot(const double* a, const double* b, std::size_t n) {
#if defined(__SSE2__)
  __m128d va = _mm_setzero_pd();  // lanes {s0, s1}
  __m128d vb = _mm_setzero_pd();  // lanes {s2, s3}
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    va = _mm_add_pd(va, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    vb = _mm_add_pd(
        vb, _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  double s0 = _mm_cvtsd_f64(va);
  double s1 = _mm_cvtsd_f64(_mm_unpackhi_pd(va, va));
  double s2 = _mm_cvtsd_f64(vb);
  double s3 = _mm_cvtsd_f64(_mm_unpackhi_pd(vb, vb));
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
#else
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  double s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
#endif
}

}  // namespace

PatternContext::PatternContext(ts::SeriesView pattern)
    : values(pattern.begin(), pattern.end()) {
  const std::size_t n = values.size();
  if (n == 0) return;
  inv_n = 1.0 / static_cast<double>(n);
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  // Largest-|z| points first: against a z-normalized window they
  // contribute the biggest squared terms, so the early-abandon sum
  // crosses the best-so-far threshold soonest (UCR-suite reordering).
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return std::abs(values[a]) > std::abs(values[b]);
            });
}

SeriesContext::SeriesContext(ts::SeriesView series) : data_(series) {
  const std::size_t m = data_.size();
  prefix_.resize(m + 1);
  prefix_sq_.resize(m + 1);
  prefix_[0] = 0.0;
  prefix_sq_[0] = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    prefix_[i + 1] = prefix_[i] + data_[i];
    prefix_sq_[i + 1] = prefix_sq_[i] + data_[i] * data_[i];
  }
}

void SeriesContext::WindowMoments(std::size_t pos, std::size_t len,
                                  double* mu, double* inv_sigma) const {
  if (len == 1) {
    // A single-point window is exactly flat; computing it through the
    // prefix sums would leave cancellation noise above the flat
    // threshold.
    *mu = data_[pos];
    *inv_sigma = 1.0;
    return;
  }
  const double inv_len = 1.0 / static_cast<double>(len);
  const double sum = prefix_[pos + len] - prefix_[pos];
  const double sum_sq = prefix_sq_[pos + len] - prefix_sq_[pos];
  *mu = sum * inv_len;
  const double var = std::max(0.0, sum_sq * inv_len - *mu * *mu);
  const double sigma = std::sqrt(var);
  *inv_sigma = sigma < ts::kFlatThreshold ? 1.0 : 1.0 / sigma;
}

BestMatch BatchedBestMatch(const PatternContext& pattern,
                           const SeriesContext& series) {
  BestMatch best;  // Explicit sentinel: npos position, infinite distance.
  const std::size_t n = pattern.size();
  if (n == 0 || series.size() < n) return best;
  if (n == 1) {
    // Every single-point window is exactly flat (z-value 0), so all
    // positions tie at distance |p| and the first window wins — going
    // through the prefix sums would instead see cancellation noise.
    best.position = 0;
    const double p = pattern.values[0];
    best.distance = std::sqrt(p * p * pattern.inv_n);
    return best;
  }

  const double* hay = series.data().data();
  const double* pat = pattern.values.data();
  const double nd = static_cast<double>(n);
  const double inv_n = pattern.inv_n;
  const double p_first = pat[0];
  const double p_last = pat[n - 1];
  const double sum_p = pattern.sum;
  const double psq = pattern.sum_sq;
  double best_sq = std::numeric_limits<double>::infinity();

  for (std::size_t pos = 0; pos + n <= series.size(); ++pos) {
    const double sum = series.WindowSum(pos, n);
    const double sum_sq = series.WindowSumSq(pos, n);
    const double mu = sum * inv_n;
    const double var = std::max(0.0, sum_sq * inv_n - mu * mu);
    double sigma = std::sqrt(var);
    // Flat-window rule: sigma below the threshold means mean-center only,
    // the same convention the legacy kernel applies.
    if (sigma < ts::kFlatThreshold) sigma = 1.0;
    const double sig2 = sigma * sigma;
    // All comparisons happen in sigma-scaled space (everything multiplied
    // by sigma^2), which keeps the whole window free of divisions; the
    // one division below runs only when a window improves the best.
    const double thresh = best_sq * sig2;

    // Lower-bound cascade: the first/last-point terms alone already bound
    // the window's distance from below (all terms of the squared sum are
    // non-negative), so pruned windows cost ~8 flops and never touch the
    // other n-2 points.
    const double d_first = (hay[pos] - mu) - p_first * sigma;
    double lb = d_first * d_first;
    if (n >= 2) {
      const double d_last = (hay[pos + n - 1] - mu) - p_last * sigma;
      lb += d_last * d_last;
    }
    if (lb >= thresh) continue;

    // Surviving windows: closed-form z-normalized distance. Expanding
    //   sigma^2 * sum((x - mu)/sigma - p)^2
    // gives  csq - 2*sigma*(dot - mu*sum_p) + psq*sigma^2  with
    // csq = sum_sq - n*mu^2, so the only O(n) work is one sequential
    // dot product of raw window values against the pattern — branch-free
    // and SIMD-friendly, unlike a per-point z-normalize-and-abandon loop.
    const double dot = Dot(hay + pos, pat, n);
    const double csq = std::max(0.0, sum_sq - nd * mu * mu);
    const double d2s = std::max(
        0.0, csq - 2.0 * sigma * (dot - mu * sum_p) + psq * sig2);
    if (d2s < thresh) {
      best_sq = d2s / sig2;
      best.position = pos;
    }
  }
  best.distance = std::sqrt(best_sq * inv_n);
  return best;
}

BatchMatcher::BatchMatcher(const std::vector<ts::Series>& patterns) {
  patterns_.reserve(patterns.size());
  for (const auto& p : patterns) patterns_.emplace_back(p);
}

void BatchMatcher::Add(ts::SeriesView pattern) {
  patterns_.emplace_back(pattern);
}

std::vector<BestMatch> BatchMatcher::MatchAll(
    const SeriesContext& series) const {
  std::vector<BestMatch> out;
  out.reserve(patterns_.size());
  for (const auto& p : patterns_) {
    out.push_back(BatchedBestMatch(p, series));
  }
  return out;
}

}  // namespace rpm::distance
