#include "distance/matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "distance/isa_dispatch.h"
#include "distance/kernel_common.h"
#include "distance/pattern_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ts/znorm.h"

namespace rpm::distance {
namespace {

// Process-wide matcher counters (obs::DefaultRegistry — the METRICS
// verb renders them next to the per-server serve/stream metrics).
// Resolved once; incrementing is one relaxed fetch_add per *scan*
// (a scan is O(series length x pattern length) work, so the atomic is
// noise). Never per window.
struct MatcherMetrics {
  obs::Counter* scans;
  obs::Counter* matchall_calls;
  obs::Counter* windows;
  obs::Counter* bucket_scans;

  static const MatcherMetrics& Get() {
    static const MatcherMetrics m = [] {
      auto& reg = obs::DefaultRegistry();
      MatcherMetrics out;
      out.scans = reg.GetCounter(
          "rpm_matcher_scans_total",
          "Pattern-by-series best-match scans (incl. seeded/existence).");
      out.matchall_calls = reg.GetCounter(
          "rpm_matcher_matchall_calls_total",
          "BatchMatcher::MatchAll invocations (one per series transform).");
      out.windows = reg.GetCounter(
          "rpm_matcher_scan_windows_total",
          "Candidate windows covered by best-match scans.");
      out.bucket_scans = reg.GetCounter(
          "rpm_matcher_bucket_scans_total",
          "Length-bucket scans executed by the SoA MatchAll path.");
      return out;
    }();
    return m;
  }
};

// The canonical dot kernels (pinned accumulation order shared with the
// SoA pattern store) live in kernel_common.h; this dispatcher picks the
// vector form whenever the runtime tier allows it. Forcing the scalar
// tier (RPM_FORCE_ISA=scalar / ForceIsaTier) therefore pins the whole
// per-pattern scan, dots included, to baseline ISA.
inline double Dot(const double* a, const double* b, std::size_t n) {
#if defined(RPM_DOT_AVX2_DISPATCH)
  if (CurrentIsaTier() >= IsaTier::kAvx2) {
    return internal::DotAvx2(a, b, n);
  }
#endif
  return internal::DotBase(a, b, n);
}

}  // namespace

PatternContext::PatternContext(ts::SeriesView pattern)
    : values(pattern.begin(), pattern.end()) {
  const std::size_t n = values.size();
  if (n == 0) return;
  inv_n = 1.0 / static_cast<double>(n);
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
}

SeriesContext::SeriesContext(ts::SeriesView series) { Assign(series); }

void SeriesContext::Assign(ts::SeriesView series) {
  data_ = series;
  const std::size_t m = data_.size();
  prefix_.resize(m + 1);
  prefix_sq_.resize(m + 1);
  prefix_[0] = 0.0;
  prefix_sq_[0] = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    prefix_[i + 1] = prefix_[i] + data_[i];
    prefix_sq_[i + 1] = prefix_sq_[i] + data_[i] * data_[i];
  }
}

void SeriesContext::WindowMoments(std::size_t pos, std::size_t len,
                                  double* mu, double* inv_sigma) const {
  if (len == 1) {
    // A single-point window is exactly flat; computing it through the
    // prefix sums would leave cancellation noise above the flat
    // threshold.
    *mu = data_[pos];
    *inv_sigma = 1.0;
    return;
  }
  const double inv_len = 1.0 / static_cast<double>(len);
  const double sum = prefix_[pos + len] - prefix_[pos];
  const double sum_sq = prefix_sq_[pos + len] - prefix_sq_[pos];
  // Shared sum-to-moments recurrence (flat rule folds into sigma = 1.0,
  // so the inverse is the legacy inv_sigma in both branches).
  double sigma = 0.0;
  ts::WindowMomentsFromSums(sum, sum_sq, inv_len, mu, &sigma);
  *inv_sigma = 1.0 / sigma;
}

namespace {

#if defined(RPM_DOT_AVX2_DISPATCH)
// AVX2 variant of the scan body for n >= 2: window moments and the
// endpoint lower bound are computed for four consecutive positions per
// iteration. Per-lane arithmetic applies exactly the operations of the
// scalar loop in the same order (explicit mul/add/sub/sqrt intrinsics,
// never FMA), so every lane value is bit-identical to what the scalar
// code computes for that position. The vector prune uses the best-so-far
// as of the block start — a threshold at least as permissive as the
// scalar loop's running one — and every surviving lane is re-gated with
// the scalar rule (`lb >= best_sq * sig2` with the *current* best)
// before its dot product, so the sequence of best-updates, and hence the
// result, is identical to the scalar scan by induction.
__attribute__((target("avx2"))) BestMatch BestMatchScanAvx2(
    const PatternContext& pattern, const SeriesContext& series,
    double seed_sq, bool first_hit) {
  BestMatch best;
  const std::size_t n = pattern.size();
  const std::size_t m = series.size();

  const double* hay = series.data().data();
  const double* prefix = series.PrefixData();
  const double* prefix_sq = series.PrefixSqData();
  const double* pat = pattern.values.data();
  const double nd = static_cast<double>(n);
  const double inv_n = pattern.inv_n;
  const double p_first = pat[0];
  const double p_last = pat[n - 1];
  const double sum_p = pattern.sum;
  const double psq = pattern.sum_sq;
  double best_sq = seed_sq;

  const __m256d vinv_n = _mm256_set1_pd(inv_n);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vflat = _mm256_set1_pd(ts::kFlatThreshold);
  const __m256d vp_first = _mm256_set1_pd(p_first);
  const __m256d vp_last = _mm256_set1_pd(p_last);

  std::size_t pos = 0;
  for (; pos + 3 + n <= m; pos += 4) {
    // Moments for positions pos..pos+3: consecutive windows read
    // consecutive prefix entries, so the loads are plain unaligned loads.
    const __m256d vsum = _mm256_sub_pd(_mm256_loadu_pd(prefix + pos + n),
                                       _mm256_loadu_pd(prefix + pos));
    const __m256d vsum_sq =
        _mm256_sub_pd(_mm256_loadu_pd(prefix_sq + pos + n),
                      _mm256_loadu_pd(prefix_sq + pos));
    const __m256d vmu = _mm256_mul_pd(vsum, vinv_n);
    const __m256d vvar = _mm256_max_pd(
        vzero, _mm256_sub_pd(_mm256_mul_pd(vsum_sq, vinv_n),
                             _mm256_mul_pd(vmu, vmu)));
    __m256d vsigma = _mm256_sqrt_pd(vvar);
    // Flat-window rule per lane: sigma < threshold -> 1.0.
    vsigma = _mm256_blendv_pd(vsigma, vone,
                              _mm256_cmp_pd(vsigma, vflat, _CMP_LT_OQ));
    const __m256d vsig2 = _mm256_mul_pd(vsigma, vsigma);
    const __m256d vthresh = _mm256_mul_pd(_mm256_set1_pd(best_sq), vsig2);

    const __m256d vd_first = _mm256_sub_pd(
        _mm256_sub_pd(_mm256_loadu_pd(hay + pos), vmu),
        _mm256_mul_pd(vp_first, vsigma));
    __m256d vlb = _mm256_mul_pd(vd_first, vd_first);
    const __m256d vd_last = _mm256_sub_pd(
        _mm256_sub_pd(_mm256_loadu_pd(hay + pos + n - 1), vmu),
        _mm256_mul_pd(vp_last, vsigma));
    vlb = _mm256_add_pd(vlb, _mm256_mul_pd(vd_last, vd_last));

    const int keep = _mm256_movemask_pd(
        _mm256_cmp_pd(vlb, vthresh, _CMP_LT_OQ));
    if (keep == 0) continue;  // Whole block pruned — the common case.

    alignas(32) double mu_l[4];
    alignas(32) double sigma_l[4];
    alignas(32) double sig2_l[4];
    alignas(32) double sum_sq_l[4];
    alignas(32) double lb_l[4];
    _mm256_store_pd(mu_l, vmu);
    _mm256_store_pd(sigma_l, vsigma);
    _mm256_store_pd(sig2_l, vsig2);
    _mm256_store_pd(sum_sq_l, vsum_sq);
    _mm256_store_pd(lb_l, vlb);
    for (int lane = 0; lane < 4; ++lane) {
      if ((keep & (1 << lane)) == 0) continue;
      // Scalar re-gate with the *current* best: the vector mask was
      // computed against the block-start best, which may have improved.
      if (lb_l[lane] >= best_sq * sig2_l[lane]) continue;
      const std::size_t p = pos + static_cast<std::size_t>(lane);
      const double dot = internal::DotAvx2Impl(hay + p, pat, n);
      const double csq =
          std::max(0.0, sum_sq_l[lane] - nd * mu_l[lane] * mu_l[lane]);
      const double d2s = std::max(
          0.0, csq - 2.0 * sigma_l[lane] * (dot - mu_l[lane] * sum_p) +
                   psq * sig2_l[lane]);
      if (d2s < best_sq * sig2_l[lane]) {
        best_sq = d2s / sig2_l[lane];
        best.position = p;
        if (first_hit) {
          best.distance = std::sqrt(best_sq * inv_n);
          return best;
        }
      }
    }
  }

  // Scalar tail: the last < 4 positions, same code as the scalar scan.
  for (; pos + n <= m; ++pos) {
    const double sum = series.WindowSum(pos, n);
    const double sum_sq = series.WindowSumSq(pos, n);
    double mu = 0.0;
    double sigma = 0.0;
    ts::WindowMomentsFromSums(sum, sum_sq, inv_n, &mu, &sigma);
    const double sig2 = sigma * sigma;
    const double thresh = best_sq * sig2;
    const double d_first = (hay[pos] - mu) - p_first * sigma;
    double lb = d_first * d_first;
    const double d_last = (hay[pos + n - 1] - mu) - p_last * sigma;
    lb += d_last * d_last;
    if (lb >= thresh) continue;
    const double dot = Dot(hay + pos, pat, n);
    const double csq = std::max(0.0, sum_sq - nd * mu * mu);
    const double d2s = std::max(
        0.0, csq - 2.0 * sigma * (dot - mu * sum_p) + psq * sig2);
    if (d2s < thresh) {
      best_sq = d2s / sig2;
      best.position = pos;
      if (first_hit) break;
    }
  }
  if (best.position != BestMatch::npos) {
    best.distance = std::sqrt(best_sq * inv_n);
  }
  return best;
}
#endif  // RPM_DOT_AVX2_DISPATCH

// Shared scan for the plain and cutoff-seeded entry points. `seed_sq` is
// the initial best-so-far in length-scaled squared space (n * distance^2);
// +inf reproduces the exhaustive scan. Returns the sentinel when no
// window improved on the seed. With `first_hit` the scan returns at the
// first window that improves on the seed — only meaningful together
// with a finite seed, for callers that test existence rather than read
// the minimum.
BestMatch BestMatchScan(const PatternContext& pattern,
                        const SeriesContext& series, double seed_sq,
                        bool first_hit = false) {
  BestMatch best;  // Explicit sentinel: npos position, infinite distance.
  const std::size_t n = pattern.size();
  if (n == 0 || series.size() < n) return best;
  if (n == 1) {
    // Every single-point window is exactly flat (z-value 0), so all
    // positions tie at distance |p| and the first window wins — going
    // through the prefix sums would instead see cancellation noise.
    const double p = pattern.values[0];
    if (!(p * p < seed_sq)) return best;
    best.position = 0;
    best.distance = std::sqrt(p * p * pattern.inv_n);
    return best;
  }
#if defined(RPM_DOT_AVX2_DISPATCH)
  // Bit-identical AVX2 body (see BestMatchScanAvx2); n >= 2 holds here.
  // The AVX-512 tier also lands here: the per-pattern scan has no
  // 512-bit body (the window-major bucket kernels in pattern_store.cc
  // are where 8-wide blocks pay off), and AVX-512 hosts run AVX2 code.
  if (CurrentIsaTier() >= IsaTier::kAvx2) {
    return BestMatchScanAvx2(pattern, series, seed_sq, first_hit);
  }
#endif

  const double* hay = series.data().data();
  const double* pat = pattern.values.data();
  const double nd = static_cast<double>(n);
  const double inv_n = pattern.inv_n;
  const double p_first = pat[0];
  const double p_last = pat[n - 1];
  const double sum_p = pattern.sum;
  const double psq = pattern.sum_sq;
  double best_sq = seed_sq;

  for (std::size_t pos = 0; pos + n <= series.size(); ++pos) {
    const double sum = series.WindowSum(pos, n);
    const double sum_sq = series.WindowSumSq(pos, n);
    // Shared moments recurrence, including the flat-window rule (sigma
    // below the threshold means mean-center only, the same convention
    // the legacy kernel applies).
    double mu = 0.0;
    double sigma = 0.0;
    ts::WindowMomentsFromSums(sum, sum_sq, inv_n, &mu, &sigma);
    const double sig2 = sigma * sigma;
    // All comparisons happen in sigma-scaled space (everything multiplied
    // by sigma^2), which keeps the whole window free of divisions; the
    // one division below runs only when a window improves the best.
    const double thresh = best_sq * sig2;

    // Lower-bound cascade: the first/last-point terms alone already bound
    // the window's distance from below (all terms of the squared sum are
    // non-negative), so pruned windows cost ~8 flops and never touch the
    // other n-2 points.
    const double d_first = (hay[pos] - mu) - p_first * sigma;
    double lb = d_first * d_first;
    if (n >= 2) {
      const double d_last = (hay[pos + n - 1] - mu) - p_last * sigma;
      lb += d_last * d_last;
    }
    if (lb >= thresh) continue;

    // Surviving windows: closed-form z-normalized distance. Expanding
    //   sigma^2 * sum((x - mu)/sigma - p)^2
    // gives  csq - 2*sigma*(dot - mu*sum_p) + psq*sigma^2  with
    // csq = sum_sq - n*mu^2, so the only O(n) work is one sequential
    // dot product of raw window values against the pattern — branch-free
    // and SIMD-friendly, unlike a per-point z-normalize-and-abandon loop.
    const double dot = Dot(hay + pos, pat, n);
    const double csq = std::max(0.0, sum_sq - nd * mu * mu);
    const double d2s = std::max(
        0.0, csq - 2.0 * sigma * (dot - mu * sum_p) + psq * sig2);
    if (d2s < thresh) {
      best_sq = d2s / sig2;
      best.position = pos;
      if (first_hit) break;
    }
  }
  if (best.position != BestMatch::npos) {
    best.distance = std::sqrt(best_sq * inv_n);
  }
  return best;
}

// Candidate windows a scan over this pattern/series pair covers.
std::size_t ScanWindows(const PatternContext& pattern,
                        const SeriesContext& series) {
  return pattern.empty() || pattern.size() > series.size()
             ? 0
             : series.size() - pattern.size() + 1;
}

void CountScan(const PatternContext& pattern, const SeriesContext& series) {
  const MatcherMetrics& m = MatcherMetrics::Get();
  m.scans->Increment();
  m.windows->Increment(ScanWindows(pattern, series));
}

}  // namespace

BestMatch BatchedBestMatch(const PatternContext& pattern,
                           const SeriesContext& series) {
  CountScan(pattern, series);
  return BestMatchScan(pattern, series,
                       std::numeric_limits<double>::infinity());
}

BestMatch BatchedBestMatch(const PatternContext& pattern,
                           const SeriesContext& series, double cutoff) {
  CountScan(pattern, series);
  if (std::isinf(cutoff)) return BestMatchScan(pattern, series, cutoff);
  // Seed in the scan's length-scaled squared space: distance < cutoff
  // iff n * distance^2 < n * cutoff^2 (the scan compares the exact same
  // accumulated quantity), so only provably-not-better windows are
  // skipped.
  const double seed_sq =
      cutoff * cutoff * static_cast<double>(pattern.size());
  return BestMatchScan(pattern, series, seed_sq);
}

bool BatchedMatchBelow(const PatternContext& pattern,
                       const SeriesContext& series, double cutoff) {
  CountScan(pattern, series);
  if (std::isinf(cutoff)) {
    return BestMatchScan(pattern, series, cutoff).position !=
           BestMatch::npos;
  }
  // A window improves on the cutoff seed iff its distance is < cutoff,
  // so the first improvement already decides the predicate — no need to
  // keep scanning for the minimum like the seeded best-match does.
  const double seed_sq =
      cutoff * cutoff * static_cast<double>(pattern.size());
  return BestMatchScan(pattern, series, seed_sq, /*first_hit=*/true)
             .position != BestMatch::npos;
}

BatchMatcher::BatchMatcher() = default;

BatchMatcher::BatchMatcher(const std::vector<ts::Series>& patterns) {
  patterns_.reserve(patterns.size());
  for (const auto& p : patterns) patterns_.emplace_back(p);
}

// Copies/moves transfer the contexts only; the SoA store is derived
// state and rebuilds lazily in the destination (copying the arena would
// buy nothing — builds are cold-path).
BatchMatcher::BatchMatcher(const BatchMatcher& other)
    : patterns_(other.patterns_) {}

BatchMatcher& BatchMatcher::operator=(const BatchMatcher& other) {
  if (this != &other) {
    patterns_ = other.patterns_;
    store_.reset();
  }
  return *this;
}

BatchMatcher::BatchMatcher(BatchMatcher&& other) noexcept
    : patterns_(std::move(other.patterns_)),
      store_(std::move(other.store_)) {}

BatchMatcher& BatchMatcher::operator=(BatchMatcher&& other) noexcept {
  if (this != &other) {
    patterns_ = std::move(other.patterns_);
    store_ = std::move(other.store_);
  }
  return *this;
}

BatchMatcher::~BatchMatcher() = default;

void BatchMatcher::Add(ts::SeriesView pattern) {
  patterns_.emplace_back(pattern);
  store_.reset();  // single-threaded setup phase; rebuilt on next MatchAll
}

PatternStore& BatchMatcher::EnsureStore() const {
  // Adds happen-before any parallel matching (the transform snapshots
  // the matcher before fanning out), so the only race the lock guards is
  // several workers arriving at the first lazy build together.
  std::lock_guard<std::mutex> lock(store_mutex_);
  if (!store_) {
    auto built = std::make_unique<PatternStore>();
    built->Build(patterns_);
    store_ = std::move(built);
  }
  return *store_;
}

const PatternStore& BatchMatcher::store() const { return EnsureStore(); }

void BatchMatcher::MatchAll(const SeriesContext& series,
                            MatchScratch* scratch,
                            std::vector<BestMatch>* out) const {
  const MatcherMetrics& metrics = MatcherMetrics::Get();
  metrics.matchall_calls->Increment();
  // Sampled span over the whole K-pattern scan; a relaxed load + branch
  // when tracing is off.
  obs::TraceSpan span("matcher.match_all");
  // Same per-scan accounting as K individual BatchedBestMatch calls, so
  // the counters stay comparable across the per-pattern and SoA paths.
  metrics.scans->Increment(patterns_.size());
  std::size_t windows = 0;
  for (const auto& p : patterns_) windows += ScanWindows(p, series);
  metrics.windows->Increment(windows);

  const std::size_t buckets = EnsureStore().MatchAll(series, scratch, out);
  metrics.bucket_scans->Increment(buckets);
}

std::vector<BestMatch> BatchMatcher::MatchAll(
    const SeriesContext& series) const {
  MatchScratch scratch;
  std::vector<BestMatch> out;
  MatchAll(series, &scratch, &out);
  return out;
}

void BatchMatcher::MatchAllSeeded(const SeriesContext& series,
                                  MatchScratch* scratch,
                                  const std::vector<double>& seeds,
                                  std::vector<BestMatch>* out) const {
  const MatcherMetrics& metrics = MatcherMetrics::Get();
  metrics.matchall_calls->Increment();
  obs::TraceSpan span("matcher.match_all");
  // Same per-scan accounting as K individual seeded BatchedBestMatch
  // calls (the windows a seed prunes still count as covered, exactly as
  // in the per-pattern path's accounting).
  metrics.scans->Increment(patterns_.size());
  std::size_t windows = 0;
  for (const auto& p : patterns_) windows += ScanWindows(p, series);
  metrics.windows->Increment(windows);

  const std::size_t buckets =
      EnsureStore().MatchAllSeeded(series, scratch, seeds, out);
  metrics.bucket_scans->Increment(buckets);
}

bool BatchMatcher::AnyBelow(const SeriesContext& series,
                            MatchScratch* scratch, double tau,
                            std::vector<std::uint8_t>* below) const {
  const MatcherMetrics& metrics = MatcherMetrics::Get();
  metrics.scans->Increment(patterns_.size());
  std::size_t windows = 0;
  for (const auto& p : patterns_) windows += ScanWindows(p, series);
  metrics.windows->Increment(windows);
  return EnsureStore().AnyBelow(series, scratch, tau, below);
}

}  // namespace rpm::distance
