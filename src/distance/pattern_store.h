// Length-bucketed structure-of-arrays pattern store: the storage layout
// behind BatchMatcher::MatchAll and the transform hot path.
//
// The per-pattern engine (matcher.h) answers "best match of pattern P in
// series S" one pattern at a time: each scan re-derives every window's
// moments from the series prefix sums even though K patterns visit the
// same windows. The store flips the loop to window-major. Patterns are
// grouped into *buckets* by exact length; for each bucket the scan walks
// the series once, computes each window block's moments a single time,
// and streams them against every pattern in the bucket:
//
//   * slab layout — all pattern values live in one 64-byte-aligned
//     arena, one contiguous zero-padded row per pattern (row stride
//     rounded up to 8 doubles, so every row starts on a cache line).
//     The padding lanes are never read by the dot kernels (which stop at
//     the true length); they exist so rows stay aligned and so vector
//     loads near the row end stay in-bounds for ASan/UBSan.
//   * per-bucket SoA metadata — first/last values, value sums and
//     squared sums, one entry per pattern, contiguous — the inputs of
//     the endpoint/sigma lower-bound cascade.
//   * window-major kernels per ISA tier (scalar / AVX2 / AVX-512 under
//     the runtime dispatcher, see isa_dispatch.h) — the window moments
//     and the (window - mu) endpoint terms are computed once per block
//     and shared by the whole bucket; each pattern then pays only its
//     own lower-bound test, and dot products run only for windows that
//     survive a scalar re-gate.
//
// Bit-identity: the vector kernels apply exactly the scalar operations
// per lane (explicit mul/add/sub/sqrt, never FMA), prune with the
// block-start best (at least as permissive as the scalar loop's running
// threshold), and re-gate every surviving lane with the scalar rule
// before its dot product — the same induction the AVX2 scan in
// matcher.cc established. MatchAll through the store is therefore
// bit-identical to per-pattern BatchedBestMatch on every tier, which the
// golden tier-sweep tests assert exactly.

#ifndef RPM_DISTANCE_PATTERN_STORE_H_
#define RPM_DISTANCE_PATTERN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "distance/euclidean.h"
#include "distance/matcher.h"
#include "ts/series.h"

namespace rpm::distance {

class PatternStore {
 public:
  PatternStore() = default;

  /// Builds the bucketed slabs from `patterns` (values are copied into
  /// the arena; `patterns` need not outlive the store). Patterns must
  /// already be z-normalized — the same invariant PatternContext and
  /// FindBestMatch assume.
  explicit PatternStore(const std::vector<ts::Series>& patterns);

  /// Rebuilds from pattern contexts (shares the build path; used by
  /// BatchMatcher, whose incremental Add keeps contexts as the source of
  /// truth and rebuilds the store lazily).
  void Build(const std::vector<PatternContext>& patterns);

  std::size_t size() const { return num_patterns_; }
  bool empty() const { return num_patterns_ == 0; }

  /// Best match of every pattern against `series`, in the original
  /// pattern order (the store's bucket permutation is internal).
  /// Patterns longer than the series — and empty patterns — yield the
  /// explicit unfound sentinel at their slot, exactly like
  /// BatchedBestMatch. `out` is resized to size(). Returns the number of
  /// buckets actually scanned (length fits the series), for the
  /// rpm_matcher_bucket_scans_total counter.
  std::size_t MatchAll(const SeriesContext& series, MatchScratch* scratch,
                       std::vector<BestMatch>* out) const;

  /// MatchAll with a per-pattern initial best-so-far: pattern i's scan
  /// starts from `seeds[i]` (distance space, +inf = unseeded), so
  /// windows that cannot beat the seed are pruned by the endpoint lower
  /// bound exactly as in the cutoff-seeded per-pattern scan. Slots whose
  /// scan never improves on the seed yield the unfound sentinel —
  /// bit-identical to `BatchedBestMatch(pattern, series, seeds[i])` per
  /// pattern, on every ISA tier. `seeds` must have size() entries, in
  /// the original (caller) pattern order. Returns buckets scanned.
  std::size_t MatchAllSeeded(const SeriesContext& series,
                             MatchScratch* scratch,
                             const std::vector<double>& seeds,
                             std::vector<BestMatch>* out) const;

  /// First-hit existence scan: decides, for every pattern, whether some
  /// window of `series` matches it strictly below `tau` — each decision
  /// identical to `BatchedMatchBelow(pattern, series, tau)` (the
  /// pre-hit thresholds of that first-improvement scan are all
  /// seed-derived, and "some window passes both gates" does not depend
  /// on sweep order). A pattern's bucket sweep stops at its first
  /// sub-tau window; with `below == nullptr` the whole call returns at
  /// the first sub-tau window of any pattern. Returns true iff any
  /// pattern matched below `tau`; when `below` is non-null it is
  /// resized to size() and gets one 0/1 flag per pattern in original
  /// order (empty or too-long patterns decide false, like the
  /// per-pattern scan).
  bool AnyBelow(const SeriesContext& series, MatchScratch* scratch,
                double tau,
                std::vector<std::uint8_t>* below = nullptr) const;

  /// One bucket's summary, for benchmarks and introspection.
  struct BucketInfo {
    std::size_t length = 0;       ///< exact pattern length of the bucket
    std::size_t padded = 0;       ///< slab row stride (multiple of 8)
    std::size_t patterns = 0;     ///< patterns in the bucket
  };
  std::size_t num_buckets() const { return buckets_.size(); }
  BucketInfo bucket_info(std::size_t b) const;

  /// Scans only bucket `b`, writing one BestMatch per bucket pattern
  /// into `out[0 .. patterns)`, in bucket-internal order. Benchmark
  /// hook: per-bucket timing rows in BENCH_kernels.json come from here.
  void MatchBucket(std::size_t b, const SeriesContext& series,
                   BestMatch* out) const;

 private:
  struct Bucket {
    std::size_t length = 0;   ///< exact pattern length (n)
    std::size_t padded = 0;   ///< row stride in doubles (n rounded to 8)
    std::size_t first = 0;    ///< first pattern slot (store order)
    std::size_t count = 0;    ///< patterns in the bucket
    std::size_t slab = 0;     ///< arena offset of the first row
    double inv_n = 0.0;       ///< 1 / length
  };

  void BuildFromViews(const std::vector<ts::SeriesView>& patterns);
  const double* Row(const Bucket& bucket, std::size_t i) const {
    return arena_.get() + bucket.slab + i * bucket.padded;
  }
  void ScanBucket(const Bucket& bucket, const SeriesContext& series,
                  double* best_sq, std::size_t* best_pos) const;
  // Shared bucket loop behind MatchAll (seeds == nullptr) and
  // MatchAllSeeded.
  std::size_t MatchAllImpl(const SeriesContext& series,
                           MatchScratch* scratch,
                           const std::vector<double>* seeds,
                           std::vector<BestMatch>* out) const;

  // One aligned arena for every slab row (64-byte aligned rows).
  std::unique_ptr<double[], void (*)(double*)> arena_{nullptr, nullptr};
  std::vector<Bucket> buckets_;            // ascending by length
  // Pattern metadata in store order (bucket-major), SoA.
  std::vector<double> first_;              // pattern's first value
  std::vector<double> last_;               // pattern's last value
  std::vector<double> sum_;                // sum of values
  std::vector<double> sum_sq_;             // sum of squared values
  std::vector<std::uint32_t> orig_index_;  // store slot -> caller index
  std::size_t num_patterns_ = 0;
  std::size_t num_empty_ = 0;              // empty patterns (sentinel slots)
};

}  // namespace rpm::distance

#endif  // RPM_DISTANCE_PATTERN_STORE_H_
