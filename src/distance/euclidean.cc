#include "distance/euclidean.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "distance/matcher.h"
#include "ts/znorm.h"

namespace rpm::distance {

double SquaredEuclidean(ts::SeriesView a, ts::SeriesView b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double Euclidean(ts::SeriesView a, ts::SeriesView b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

double SquaredEuclideanEarlyAbandon(ts::SeriesView a, ts::SeriesView b,
                                    double cutoff) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
    if (acc >= cutoff) return acc;
  }
  return acc;
}

double NormalizedEuclidean(ts::SeriesView a, ts::SeriesView b) {
  if (a.empty()) return 0.0;
  return std::sqrt(SquaredEuclidean(a, b) /
                   static_cast<double>(a.size()));
}

double NormalizedEuclideanBounded(ts::SeriesView a, ts::SeriesView b,
                                  double cutoff) {
  if (a.empty()) return 0.0;
  const double n = static_cast<double>(a.size());
  double acc = 0.0;
  std::size_t i = 0;
  for (std::size_t block = 16; i < a.size();) {
    const std::size_t stop = std::min(a.size(), i + block);
    for (; i < stop; ++i) {
      const double d = a[i] - b[i];
      acc += d * d;
    }
    // The partial sum is a floating-point-monotone lower bound of the
    // final sum, and sqrt/divide preserve ordering, so this check can
    // only fire when the unbounded result would be >= cutoff.
    if (std::sqrt(acc / n) >= cutoff) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return std::sqrt(acc / n);
}

BestMatch FindBestMatch(ts::SeriesView pattern, ts::SeriesView haystack) {
  // Thin wrapper over the batched kernel: the contexts are rebuilt per
  // call, which is exactly the redundant work BatchMatcher amortizes —
  // but sharing the kernel keeps per-call and batched results
  // bit-identical.
  const std::size_t n = pattern.size();
  if (n == 0 || haystack.size() < n) return BestMatch{};
  const PatternContext pattern_ctx(pattern);
  const SeriesContext series_ctx(haystack);
  return BatchedBestMatch(pattern_ctx, series_ctx);
}

BestMatch FindBestMatchNaive(ts::SeriesView pattern,
                             ts::SeriesView haystack) {
  BestMatch best;
  const std::size_t n = pattern.size();
  if (n == 0 || haystack.size() < n) return best;

  // UCR-suite-style reordered early abandoning: accumulate the squared
  // distance at the pattern's largest-|z| points first — those contribute
  // the biggest terms against a z-normalized window, so the running sum
  // crosses the best-so-far threshold sooner.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(pattern[a]) > std::abs(pattern[b]);
  });

  // Rolling sums let each window's mean/stddev be computed in O(1).
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += haystack[i];
    sum_sq += haystack[i] * haystack[i];
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  double best_sq = std::numeric_limits<double>::infinity();

  for (std::size_t pos = 0; pos + n <= haystack.size(); ++pos) {
    const double mu = sum * inv_n;
    const double var = std::max(0.0, sum_sq * inv_n - mu * mu);
    const double sigma = std::sqrt(var);
    const double inv_sigma =
        sigma < ts::kFlatThreshold ? 1.0 : 1.0 / sigma;
    // Early-abandoning z-normalized squared distance for this window.
    double acc = 0.0;
    for (std::size_t k = 0; k < n && acc < best_sq; ++k) {
      const std::size_t i = order[k];
      const double d = (haystack[pos + i] - mu) * inv_sigma - pattern[i];
      acc += d * d;
    }
    if (acc < best_sq) {
      best_sq = acc;
      best.position = pos;
    }
    if (pos + n < haystack.size()) {
      sum += haystack[pos + n] - haystack[pos];
      sum_sq += haystack[pos + n] * haystack[pos + n] -
                haystack[pos] * haystack[pos];
    }
  }
  best.distance = std::sqrt(best_sq * inv_n);
  return best;
}

double BestMatchDistance(ts::SeriesView pattern, ts::SeriesView haystack) {
  return FindBestMatch(pattern, haystack).distance;
}

}  // namespace rpm::distance
