#include "ml/simple_classifiers.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <map>
#include <numbers>
#include <ostream>
#include <stdexcept>
#include <string>

namespace rpm::ml {
namespace {

// Parsing caps, mirroring RpmClassifier::Load: corrupt count fields must
// produce a descriptive error, never an unbounded loop or allocation.
constexpr std::size_t kMaxLoadEntries = std::size_t{1} << 20;
constexpr std::size_t kMaxLoadFeatures = std::size_t{1} << 16;

}  // namespace

void KnnFeatureClassifier::Train(const FeatureDataset& data) {
  data_ = data;
}

int KnnFeatureClassifier::Predict(std::span<const double> features) const {
  if (data_.empty()) {
    throw std::logic_error("KnnFeatureClassifier::Predict before Train");
  }
  std::vector<std::pair<double, int>> dist;  // (distance^2, label)
  dist.reserve(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    double acc = 0.0;
    const auto& row = data_.x[i];
    const std::size_t d = std::min(row.size(), features.size());
    for (std::size_t f = 0; f < d; ++f) {
      const double diff = row[f] - features[f];
      acc += diff * diff;
    }
    dist.emplace_back(acc, data_.y[i]);
  }
  const std::size_t k = std::min(std::max<std::size_t>(1, k_), dist.size());
  std::partial_sort(dist.begin(),
                    dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  std::map<int, std::size_t> votes;
  for (std::size_t i = 0; i < k; ++i) ++votes[dist[i].second];
  int best = dist[0].second;  // Nearest neighbour breaks ties.
  for (const auto& [label, count] : votes) {
    if (count > votes[best]) best = label;
  }
  return best;
}

void GaussianNaiveBayes::Train(const FeatureDataset& data) {
  classes_.clear();
  if (data.empty() || data.num_features() == 0) return;
  const std::size_t d = data.num_features();

  // Variance smoothing proportional to the largest feature variance,
  // scikit-learn style (var_smoothing = 1e-9 * max variance).
  std::vector<double> grand_mean(d, 0.0);
  for (const auto& row : data.x) {
    for (std::size_t f = 0; f < d; ++f) grand_mean[f] += row[f];
  }
  for (double& m : grand_mean) m /= static_cast<double>(data.size());
  double max_var = 0.0;
  for (std::size_t f = 0; f < d; ++f) {
    double v = 0.0;
    for (const auto& row : data.x) {
      v += (row[f] - grand_mean[f]) * (row[f] - grand_mean[f]);
    }
    max_var = std::max(max_var, v / static_cast<double>(data.size()));
  }
  const double smoothing = std::max(1e-9 * max_var, 1e-12);

  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[data.y[i]].push_back(i);
  }
  for (const auto& [label, rows] : by_class) {
    ClassModel m;
    m.label = label;
    m.log_prior = std::log(static_cast<double>(rows.size()) /
                           static_cast<double>(data.size()));
    m.mean.assign(d, 0.0);
    m.variance.assign(d, 0.0);
    for (std::size_t i : rows) {
      for (std::size_t f = 0; f < d; ++f) m.mean[f] += data.x[i][f];
    }
    for (double& v : m.mean) v /= static_cast<double>(rows.size());
    for (std::size_t i : rows) {
      for (std::size_t f = 0; f < d; ++f) {
        const double diff = data.x[i][f] - m.mean[f];
        m.variance[f] += diff * diff;
      }
    }
    for (double& v : m.variance) {
      v = v / static_cast<double>(rows.size()) + smoothing;
    }
    classes_.push_back(std::move(m));
  }
}

int GaussianNaiveBayes::Predict(std::span<const double> features) const {
  if (classes_.empty()) {
    throw std::logic_error("GaussianNaiveBayes::Predict before Train");
  }
  int best = classes_.front().label;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (const auto& m : classes_) {
    double ll = m.log_prior;
    const std::size_t d = std::min(m.mean.size(), features.size());
    for (std::size_t f = 0; f < d; ++f) {
      const double diff = features[f] - m.mean[f];
      ll += -0.5 * std::log(2.0 * std::numbers::pi * m.variance[f]) -
            0.5 * diff * diff / m.variance[f];
    }
    if (ll > best_ll) {
      best_ll = ll;
      best = m.label;
    }
  }
  return best;
}

void KnnFeatureClassifier::Save(std::ostream& out) const {
  out.precision(17);
  out << "knn " << k_ << ' ' << data_.size() << ' ' << data_.num_features()
      << '\n';
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out << data_.y[i];
    for (double v : data_.x[i]) out << ' ' << v;
    out << '\n';
  }
}

void KnnFeatureClassifier::Load(std::istream& in) {
  std::string tag;
  std::size_t n = 0;
  std::size_t d = 0;
  if (!(in >> tag >> k_ >> n >> d) || tag != "knn") {
    throw std::runtime_error("KnnFeatureClassifier::Load: bad header");
  }
  // A corrupt header must fail with a message, not drive a huge loop or
  // resize (regression: the hardening cases in tests/fuzz_test.cc).
  if (n > kMaxLoadEntries || d > kMaxLoadFeatures) {
    throw std::runtime_error("KnnFeatureClassifier::Load: corrupt counts " +
                             std::to_string(n) + " x " + std::to_string(d));
  }
  data_ = FeatureDataset{};
  for (std::size_t i = 0; i < n; ++i) {
    int label = 0;
    std::vector<double> row(d);
    in >> label;
    for (double& v : row) in >> v;
    if (!in) {
      throw std::runtime_error("KnnFeatureClassifier::Load: truncated row " +
                               std::to_string(i));
    }
    data_.Add(std::move(row), label);
  }
  if (!in) {
    throw std::runtime_error("KnnFeatureClassifier::Load: truncated");
  }
}

void GaussianNaiveBayes::Save(std::ostream& out) const {
  out.precision(17);
  out << "gnb " << classes_.size() << ' '
      << (classes_.empty() ? 0 : classes_.front().mean.size()) << '\n';
  for (const auto& m : classes_) {
    out << m.label << ' ' << m.log_prior;
    for (double v : m.mean) out << ' ' << v;
    for (double v : m.variance) out << ' ' << v;
    out << '\n';
  }
}

void GaussianNaiveBayes::Load(std::istream& in) {
  std::string tag;
  std::size_t n = 0;
  std::size_t d = 0;
  if (!(in >> tag >> n >> d) || tag != "gnb") {
    throw std::runtime_error("GaussianNaiveBayes::Load: bad header");
  }
  if (n > kMaxLoadEntries || d > kMaxLoadFeatures) {
    throw std::runtime_error("GaussianNaiveBayes::Load: corrupt counts " +
                             std::to_string(n) + " x " + std::to_string(d));
  }
  classes_.assign(n, ClassModel{});
  for (auto& m : classes_) {
    in >> m.label >> m.log_prior;
    m.mean.resize(d);
    m.variance.resize(d);
    for (double& v : m.mean) in >> v;
    for (double& v : m.variance) in >> v;
    if (!in) throw std::runtime_error("GaussianNaiveBayes::Load: truncated");
  }
  if (!in) throw std::runtime_error("GaussianNaiveBayes::Load: truncated");
}

std::unique_ptr<FeatureClassifier> MakeFeatureClassifier(
    FeatureClassifierKind kind, const SvmOptions& svm_options,
    std::size_t knn_k) {
  switch (kind) {
    case FeatureClassifierKind::kKnn:
      return std::make_unique<KnnFeatureClassifier>(knn_k);
    case FeatureClassifierKind::kNaiveBayes:
      return std::make_unique<GaussianNaiveBayes>();
    case FeatureClassifierKind::kSvm:
    default:
      return std::make_unique<SvmFeatureClassifier>(svm_options);
  }
}

}  // namespace rpm::ml
