// Two-sided Wilcoxon signed-rank test, used by the evaluation (Table 1 /
// Figure 7) to compare per-dataset error rates of two classifiers. Exact
// null distribution for n <= 25 non-zero differences; normal approximation
// with tie correction and continuity correction above.

#ifndef RPM_ML_WILCOXON_H_
#define RPM_ML_WILCOXON_H_

#include <cstddef>
#include <vector>

namespace rpm::ml {

/// Test result.
struct WilcoxonResult {
  double statistic = 0.0;    ///< W = min(W+, W-)
  double p_value = 1.0;      ///< two-sided
  std::size_t n_nonzero = 0; ///< pairs with non-zero difference
};

/// Paired two-sided test on `a` vs `b` (equal length). Zero differences
/// are dropped (Wilcoxon's original procedure); ties among |differences|
/// receive average ranks. Returns p = 1 when fewer than 1 non-zero pair.
WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b);

}  // namespace rpm::ml

#endif  // RPM_ML_WILCOXON_H_
