// Support vector machine trained with Platt's Sequential Minimal
// Optimization. RPM classifies in the representative-pattern feature space
// with an SVM (Section 3.1: "we use SVM for its popularity, but note that
// our algorithm can work with any classifier"). Multi-class problems are
// handled by one-vs-one voting; features are standardized internally.

#ifndef RPM_ML_SVM_H_
#define RPM_ML_SVM_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/feature_dataset.h"

namespace rpm::ml {

/// Kernel families supported by the SMO trainer.
enum class KernelKind { kLinear, kRbf, kPolynomial };

/// SVM hyperparameters.
struct SvmOptions {
  double c = 1.0;                        ///< soft-margin penalty
  KernelKind kernel = KernelKind::kLinear;
  /// RBF gamma; <= 0 means 1 / num_features (the common heuristic).
  double gamma = 0.0;
  /// Polynomial kernel (gamma*<a,b> + coef0)^degree.
  int poly_degree = 3;
  double poly_coef0 = 1.0;
  double tolerance = 1e-3;               ///< KKT violation tolerance
  std::size_t max_passes = 5;            ///< SMO passes without change
  std::size_t max_iterations = 2000;     ///< hard iteration cap
  std::uint64_t seed = 7;                ///< partner-pick shuffling
};

/// One-vs-one multi-class SVM.
class SvmClassifier {
 public:
  explicit SvmClassifier(SvmOptions options = {}) : options_(options) {}

  /// Trains on `data`; previous state is discarded. Requires at least one
  /// instance and one feature. Degenerate single-class data yields a
  /// constant classifier.
  void Train(const FeatureDataset& data);

  /// Predicts the label of one standardized-internally feature row.
  int Predict(std::span<const double> features) const;

  /// Predicts all rows of `data`.
  std::vector<int> PredictAll(const FeatureDataset& data) const;

  bool trained() const { return trained_; }

  /// Writes the trained model (options, moments, support vectors) as
  /// line-oriented text. Requires trained().
  void Save(std::ostream& out) const;

  /// Restores a model previously written by Save. Throws
  /// std::runtime_error on malformed input.
  void Load(std::istream& in);

 private:
  struct BinaryModel {
    int positive_label = 0;
    int negative_label = 0;
    std::vector<std::vector<double>> support_vectors;
    std::vector<double> alpha_y;  // alpha_i * y_i per support vector
    double bias = 0.0;
  };

  double Decision(const BinaryModel& m, std::span<const double> row) const;
  std::vector<double> Standardize(std::span<const double> row) const;

  SvmOptions options_;
  bool trained_ = false;
  int lone_label_ = 0;  // used when training data has a single class
  std::vector<BinaryModel> models_;
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
};

}  // namespace rpm::ml

#endif  // RPM_ML_SVM_H_
