// Classification metrics: accuracy/error, confusion matrix, per-class
// precision/recall/F-measure (Algorithm 3 optimizes per-class F-measure),
// and macro aggregates.

#ifndef RPM_ML_METRICS_H_
#define RPM_ML_METRICS_H_

#include <cstddef>
#include <map>
#include <vector>

namespace rpm::ml {

/// Fraction of agreeing positions; 0 for empty input.
double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& truth);

/// 1 - Accuracy.
double ErrorRate(const std::vector<int>& predicted,
                 const std::vector<int>& truth);

/// (truth, predicted) -> count.
std::map<std::pair<int, int>, std::size_t> ConfusionMatrix(
    const std::vector<int>& predicted, const std::vector<int>& truth);

/// Per-class precision, recall and F1.
struct ClassScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// F-measure per class label appearing in `truth` or `predicted`.
/// A class never predicted and never present scores 0.
std::map<int, ClassScore> PerClassScores(const std::vector<int>& predicted,
                                         const std::vector<int>& truth);

/// Unweighted mean of per-class F1.
double MacroF1(const std::vector<int>& predicted,
               const std::vector<int>& truth);

}  // namespace rpm::ml

#endif  // RPM_ML_METRICS_H_
