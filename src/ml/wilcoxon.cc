#include "ml/wilcoxon.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rpm::ml {
namespace {

// Exact two-sided p-value by enumerating the signed-rank sum distribution
// via dynamic programming over rank inclusion. Valid only without ties
// among |differences|; with ties it is still a close approximation and we
// use it for small n regardless (standard practice).
double ExactPValue(double w, const std::vector<double>& ranks) {
  // Distribution of W+ over all 2^n sign assignments. Ranks are average
  // ranks (may be half-integers); scale by 2 to index integers.
  std::size_t total = 0;
  std::vector<std::size_t> scaled(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    scaled[i] = static_cast<std::size_t>(std::llround(2.0 * ranks[i]));
    total += scaled[i];
  }
  std::vector<double> dp(total + 1, 0.0);
  dp[0] = 1.0;
  for (std::size_t r : scaled) {
    for (std::size_t s = total + 1; s-- > r;) {
      dp[s] += dp[s - r];
    }
  }
  const double denom = std::pow(2.0, static_cast<double>(ranks.size()));
  // P(W+ <= w) with w scaled; two-sided = 2 * min(P(W+<=w), P(W+>=w)).
  const auto w2 = static_cast<std::size_t>(std::llround(2.0 * w));
  double lower = 0.0;
  for (std::size_t s = 0; s <= std::min(w2, total); ++s) lower += dp[s];
  double upper = 0.0;
  for (std::size_t s = std::min(w2, total); s <= total; ++s) upper += dp[s];
  const double p = 2.0 * std::min(lower, upper) / denom;
  return std::min(1.0, p);
}

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

}  // namespace

WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("WilcoxonSignedRank: length mismatch");
  }
  // Non-zero differences with |d| and sign.
  std::vector<std::pair<double, int>> diffs;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (std::abs(d) > 1e-15) {
      diffs.emplace_back(std::abs(d), d > 0 ? 1 : -1);
    }
  }
  WilcoxonResult res;
  res.n_nonzero = diffs.size();
  if (diffs.empty()) return res;

  std::sort(diffs.begin(), diffs.end());
  // Average ranks across ties.
  const std::size_t n = diffs.size();
  std::vector<double> rank(n, 0.0);
  double tie_correction = 0.0;
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i;
    while (j < n && diffs[j].first == diffs[i].first) ++j;
    const double avg =
        (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) rank[k] = avg;
    const double t = static_cast<double>(j - i);
    tie_correction += t * t * t - t;
    i = j;
  }

  double w_plus = 0.0;
  double w_minus = 0.0;
  std::vector<double> all_ranks(n);
  for (std::size_t i = 0; i < n; ++i) {
    all_ranks[i] = rank[i];
    if (diffs[i].second > 0) {
      w_plus += rank[i];
    } else {
      w_minus += rank[i];
    }
  }
  res.statistic = std::min(w_plus, w_minus);

  if (n <= 25) {
    res.p_value = ExactPValue(res.statistic, all_ranks);
    return res;
  }
  const double nd = static_cast<double>(n);
  const double mean = nd * (nd + 1.0) / 4.0;
  const double var =
      nd * (nd + 1.0) * (2.0 * nd + 1.0) / 24.0 - tie_correction / 48.0;
  if (var <= 0.0) {
    res.p_value = 1.0;
    return res;
  }
  // Continuity correction toward the mean.
  const double z = (res.statistic - mean + 0.5) / std::sqrt(var);
  res.p_value = std::min(1.0, 2.0 * NormalCdf(z));
  return res;
}

}  // namespace rpm::ml
