#include "ml/cross_validation.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace rpm::ml {

std::vector<int> StratifiedFolds(const std::vector<int>& labels,
                                 std::size_t k, ts::Rng& rng) {
  const std::size_t n = labels.size();
  std::vector<int> folds(n, 0);
  if (n == 0) return folds;
  k = std::clamp<std::size_t>(k, 1, n);

  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < n; ++i) by_class[labels[i]].push_back(i);

  std::size_t next = 0;  // Rotate the starting fold across classes.
  for (auto& [label, idx] : by_class) {
    rng.Shuffle(idx);
    for (std::size_t j = 0; j < idx.size(); ++j) {
      folds[idx[j]] = static_cast<int>((next + j) % k);
    }
    next = (next + idx.size()) % k;
  }
  return folds;
}

SplitIndices StratifiedSplit(const std::vector<int>& labels,
                             double train_fraction, ts::Rng& rng) {
  SplitIndices out;
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(i);
  }
  for (auto& [label, idx] : by_class) {
    rng.Shuffle(idx);
    std::size_t n_train = static_cast<std::size_t>(
        std::lround(train_fraction * static_cast<double>(idx.size())));
    if (idx.size() >= 2) {
      n_train = std::clamp<std::size_t>(n_train, 1, idx.size() - 1);
    } else {
      n_train = idx.size();  // Lone instance goes to train.
    }
    for (std::size_t j = 0; j < idx.size(); ++j) {
      (j < n_train ? out.train : out.validation).push_back(idx[j]);
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.validation.begin(), out.validation.end());
  return out;
}

std::pair<ts::Dataset, ts::Dataset> SplitDataset(const ts::Dataset& data,
                                                 double train_fraction,
                                                 ts::Rng& rng) {
  std::vector<int> labels;
  labels.reserve(data.size());
  for (const auto& inst : data) labels.push_back(inst.label);
  const SplitIndices split = StratifiedSplit(labels, train_fraction, rng);
  ts::Dataset train;
  ts::Dataset validation;
  for (std::size_t i : split.train) train.Add(data[i]);
  for (std::size_t i : split.validation) validation.Add(data[i]);
  return {std::move(train), std::move(validation)};
}

}  // namespace rpm::ml
