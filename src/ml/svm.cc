#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <random>
#include <stdexcept>
#include <string>

namespace rpm::ml {
namespace {

double Dot(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double Kernel(const SvmOptions& opt, double gamma, std::span<const double> a,
              std::span<const double> b) {
  switch (opt.kernel) {
    case KernelKind::kLinear:
      return Dot(a, b);
    case KernelKind::kRbf:
      return std::exp(-gamma * SquaredDistance(a, b));
    case KernelKind::kPolynomial:
      return std::pow(gamma * Dot(a, b) + opt.poly_coef0, opt.poly_degree);
  }
  return 0.0;
}

// Simplified SMO (Platt 1998 as in the CS229 notes): random partner
// selection, repeated passes until `max_passes` consecutive passes change
// no multiplier or the iteration cap is hit.
struct SmoResult {
  std::vector<double> alpha;
  double bias = 0.0;
};

SmoResult TrainBinarySmo(const std::vector<std::vector<double>>& x,
                         const std::vector<int>& y,  // +1 / -1
                         const SvmOptions& opt, double gamma) {
  const std::size_t n = x.size();
  SmoResult res;
  res.alpha.assign(n, 0.0);
  std::mt19937_64 rng(opt.seed);

  // Cache the kernel matrix; training sets here are small (O(100) rows).
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = Kernel(opt, gamma, x[i], x[j]);
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }

  auto decision = [&](std::size_t i) {
    double acc = res.bias;
    for (std::size_t j = 0; j < n; ++j) {
      if (res.alpha[j] != 0.0) acc += res.alpha[j] * y[j] * k[j * n + i];
    }
    return acc;
  };

  std::size_t passes = 0;
  std::size_t iter = 0;
  while (passes < opt.max_passes && iter < opt.max_iterations) {
    ++iter;
    int changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ei = decision(i) - y[i];
      const bool violates =
          (y[i] * ei < -opt.tolerance && res.alpha[i] < opt.c) ||
          (y[i] * ei > opt.tolerance && res.alpha[i] > 0.0);
      if (!violates) continue;
      std::size_t j =
          std::uniform_int_distribution<std::size_t>(0, n - 2)(rng);
      if (j >= i) ++j;
      const double ej = decision(j) - y[j];
      const double ai_old = res.alpha[i];
      const double aj_old = res.alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(opt.c, opt.c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - opt.c);
        hi = std::min(opt.c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
      if (eta >= 0.0) continue;
      double aj = aj_old - y[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-6) continue;
      const double ai = ai_old + y[i] * y[j] * (aj_old - aj);
      res.alpha[i] = ai;
      res.alpha[j] = aj;
      const double b1 = res.bias - ei - y[i] * (ai - ai_old) * k[i * n + i] -
                        y[j] * (aj - aj_old) * k[i * n + j];
      const double b2 = res.bias - ej - y[i] * (ai - ai_old) * k[i * n + j] -
                        y[j] * (aj - aj_old) * k[j * n + j];
      if (ai > 0.0 && ai < opt.c) {
        res.bias = b1;
      } else if (aj > 0.0 && aj < opt.c) {
        res.bias = b2;
      } else {
        res.bias = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = (changed == 0) ? passes + 1 : 0;
  }
  return res;
}

}  // namespace

void SvmClassifier::Train(const FeatureDataset& data) {
  trained_ = false;
  models_.clear();
  if (data.empty() || data.num_features() == 0) return;

  // Standardize features; remember the moments for prediction time.
  const std::size_t d = data.num_features();
  feature_mean_.assign(d, 0.0);
  feature_std_.assign(d, 0.0);
  for (const auto& row : data.x) {
    for (std::size_t f = 0; f < d; ++f) feature_mean_[f] += row[f];
  }
  for (std::size_t f = 0; f < d; ++f) {
    feature_mean_[f] /= static_cast<double>(data.size());
  }
  for (const auto& row : data.x) {
    for (std::size_t f = 0; f < d; ++f) {
      const double dv = row[f] - feature_mean_[f];
      feature_std_[f] += dv * dv;
    }
  }
  for (std::size_t f = 0; f < d; ++f) {
    feature_std_[f] =
        std::sqrt(feature_std_[f] / static_cast<double>(data.size()));
    if (feature_std_[f] < 1e-12) feature_std_[f] = 1.0;
  }
  std::vector<std::vector<double>> z(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    z[i] = Standardize(data.x[i]);
  }

  const std::vector<int> labels = data.Labels();
  if (labels.size() == 1) {
    lone_label_ = labels.front();
    trained_ = true;
    return;
  }

  const double gamma =
      options_.gamma > 0.0 ? options_.gamma : 1.0 / static_cast<double>(d);

  // One binary machine per unordered label pair.
  for (std::size_t a = 0; a < labels.size(); ++a) {
    for (std::size_t b = a + 1; b < labels.size(); ++b) {
      std::vector<std::vector<double>> px;
      std::vector<int> py;
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (data.y[i] == labels[a]) {
          px.push_back(z[i]);
          py.push_back(+1);
        } else if (data.y[i] == labels[b]) {
          px.push_back(z[i]);
          py.push_back(-1);
        }
      }
      const SmoResult smo = TrainBinarySmo(px, py, options_, gamma);
      BinaryModel m;
      m.positive_label = labels[a];
      m.negative_label = labels[b];
      m.bias = smo.bias;
      for (std::size_t i = 0; i < px.size(); ++i) {
        if (std::abs(smo.alpha[i]) > 1e-12) {
          m.support_vectors.push_back(px[i]);
          m.alpha_y.push_back(smo.alpha[i] * py[i]);
        }
      }
      models_.push_back(std::move(m));
    }
  }
  trained_ = true;
}

std::vector<double> SvmClassifier::Standardize(
    std::span<const double> row) const {
  std::vector<double> out(row.size());
  for (std::size_t f = 0; f < row.size(); ++f) {
    out[f] = (row[f] - feature_mean_[f]) / feature_std_[f];
  }
  return out;
}

double SvmClassifier::Decision(const BinaryModel& m,
                               std::span<const double> row) const {
  const double gamma = options_.gamma > 0.0
                           ? options_.gamma
                           : 1.0 / static_cast<double>(row.size());
  double acc = m.bias;
  for (std::size_t i = 0; i < m.support_vectors.size(); ++i) {
    acc += m.alpha_y[i] * Kernel(options_, gamma, m.support_vectors[i], row);
  }
  return acc;
}

int SvmClassifier::Predict(std::span<const double> features) const {
  if (models_.empty()) return lone_label_;
  const std::vector<double> z = Standardize(features);
  std::map<int, int> votes;
  std::map<int, double> margin;
  for (const auto& m : models_) {
    const double dec = Decision(m, z);
    const int winner = dec >= 0.0 ? m.positive_label : m.negative_label;
    ++votes[winner];
    margin[winner] += std::abs(dec);
  }
  int best = votes.begin()->first;
  for (const auto& [label, count] : votes) {
    if (count > votes[best] ||
        (count == votes[best] && margin[label] > margin[best])) {
      best = label;
    }
  }
  return best;
}

std::vector<int> SvmClassifier::PredictAll(const FeatureDataset& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& row : data.x) out.push_back(Predict(row));
  return out;
}

void SvmClassifier::Save(std::ostream& out) const {
  out.precision(17);
  out << "svm " << static_cast<int>(options_.kernel) << ' ' << options_.c
      << ' ' << options_.gamma << ' ' << lone_label_ << '\n';
  out << "moments " << feature_mean_.size() << '\n';
  for (double v : feature_mean_) out << v << ' ';
  out << '\n';
  for (double v : feature_std_) out << v << ' ';
  out << '\n';
  out << "models " << models_.size() << '\n';
  for (const auto& m : models_) {
    out << m.positive_label << ' ' << m.negative_label << ' ' << m.bias
        << ' ' << m.support_vectors.size() << '\n';
    for (std::size_t i = 0; i < m.support_vectors.size(); ++i) {
      out << m.alpha_y[i];
      for (double v : m.support_vectors[i]) out << ' ' << v;
      out << '\n';
    }
  }
}

void SvmClassifier::Load(std::istream& in) {
  auto fail = [](const std::string& what) {
    throw std::runtime_error("SvmClassifier::Load: " + what);
  };
  // Parsing caps, mirroring RpmClassifier::Load: corrupt count fields
  // must produce a descriptive error, never an unbounded allocation
  // (regression corpus: tests/fuzz_corpus/model_svm_count_bomb.seed).
  constexpr std::size_t kMaxEntries = std::size_t{1} << 20;
  constexpr std::size_t kMaxFeatures = std::size_t{1} << 16;
  constexpr std::size_t kMaxTotalValues = std::size_t{1} << 24;
  std::string tag;
  int kernel = 0;
  if (!(in >> tag >> kernel >> options_.c >> options_.gamma >>
        lone_label_) ||
      tag != "svm") {
    fail("bad header");
  }
  if (kernel < 0 || kernel > static_cast<int>(KernelKind::kPolynomial)) {
    fail("corrupt kernel kind " + std::to_string(kernel));
  }
  options_.kernel = static_cast<KernelKind>(kernel);
  std::size_t d = 0;
  if (!(in >> tag >> d) || tag != "moments") fail("bad moments");
  if (d > kMaxFeatures) {
    fail("corrupt feature count " + std::to_string(d));
  }
  feature_mean_.resize(d);
  feature_std_.resize(d);
  for (double& v : feature_mean_) in >> v;
  for (double& v : feature_std_) in >> v;
  if (!in) fail("truncated moments");
  std::size_t num_models = 0;
  if (!(in >> tag >> num_models) || tag != "models") fail("bad models");
  if (num_models > kMaxEntries) {
    fail("corrupt model count " + std::to_string(num_models));
  }
  models_.clear();
  models_.resize(num_models);
  for (auto& m : models_) {
    std::size_t num_sv = 0;
    if (!(in >> m.positive_label >> m.negative_label >> m.bias >> num_sv)) {
      fail("bad model row");
    }
    if (num_sv > kMaxEntries ||
        num_sv * std::max<std::size_t>(d, 1) > kMaxTotalValues) {
      fail("corrupt support-vector count " + std::to_string(num_sv));
    }
    m.alpha_y.resize(num_sv);
    m.support_vectors.assign(num_sv, std::vector<double>(d));
    for (std::size_t i = 0; i < num_sv; ++i) {
      in >> m.alpha_y[i];
      for (double& v : m.support_vectors[i]) in >> v;
      if (!in) fail("truncated support vector " + std::to_string(i));
    }
  }
  if (!in) fail("truncated input");
  trained_ = true;
}

}  // namespace rpm::ml
