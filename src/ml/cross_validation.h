// Stratified splitting utilities: train/validation splits for Algorithm 3
// (5 random splits of the training data) and stratified k-fold assignment
// for the 5-fold cross-validation of its inner loop.

#ifndef RPM_ML_CROSS_VALIDATION_H_
#define RPM_ML_CROSS_VALIDATION_H_

#include <cstddef>
#include <vector>

#include "ml/feature_dataset.h"
#include "ts/rng.h"
#include "ts/series.h"

namespace rpm::ml {

/// Assigns each instance a fold id in [0, k), stratified by label: every
/// class's instances are spread round-robin over folds after shuffling.
/// k is clamped to [1, n].
std::vector<int> StratifiedFolds(const std::vector<int>& labels,
                                 std::size_t k, ts::Rng& rng);

/// Index split of a labeled time-series dataset into train/validation with
/// (approximately) `train_fraction` of each class in train; every class
/// keeps at least one instance on each side when it has >= 2 instances.
struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
};
SplitIndices StratifiedSplit(const std::vector<int>& labels,
                             double train_fraction, ts::Rng& rng);

/// Convenience overloads on datasets.
std::pair<ts::Dataset, ts::Dataset> SplitDataset(const ts::Dataset& data,
                                                 double train_fraction,
                                                 ts::Rng& rng);

}  // namespace rpm::ml

#endif  // RPM_ML_CROSS_VALIDATION_H_
