#include "ml/feature_dataset.h"

#include <set>

namespace rpm::ml {

FeatureDataset FeatureDataset::SelectColumns(
    const std::vector<std::size_t>& columns) const {
  FeatureDataset out;
  out.y = y;
  out.x.reserve(x.size());
  for (const auto& row : x) {
    std::vector<double> r;
    r.reserve(columns.size());
    for (std::size_t c : columns) r.push_back(row[c]);
    out.x.push_back(std::move(r));
  }
  return out;
}

FeatureDataset FeatureDataset::SelectRows(
    const std::vector<std::size_t>& rows) const {
  FeatureDataset out;
  out.x.reserve(rows.size());
  out.y.reserve(rows.size());
  for (std::size_t r : rows) {
    out.x.push_back(x[r]);
    out.y.push_back(y[r]);
  }
  return out;
}

std::vector<int> FeatureDataset::Labels() const {
  std::set<int> labels(y.begin(), y.end());
  return {labels.begin(), labels.end()};
}

}  // namespace rpm::ml
