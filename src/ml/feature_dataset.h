// Fixed-length feature-vector dataset: the universal representation RPM
// transforms time series into (Section 3.1 "Time Series Transformation"),
// consumed by the SVM, CFS and cross-validation utilities.

#ifndef RPM_ML_FEATURE_DATASET_H_
#define RPM_ML_FEATURE_DATASET_H_

#include <cstddef>
#include <vector>

namespace rpm::ml {

/// Rows of features plus parallel integer labels.
struct FeatureDataset {
  std::vector<std::vector<double>> x;
  std::vector<int> y;

  std::size_t size() const { return x.size(); }
  std::size_t num_features() const { return x.empty() ? 0 : x.front().size(); }
  bool empty() const { return x.empty(); }

  void Add(std::vector<double> row, int label) {
    x.push_back(std::move(row));
    y.push_back(label);
  }

  /// Returns a copy keeping only the feature columns in `columns`.
  FeatureDataset SelectColumns(const std::vector<std::size_t>& columns) const;

  /// Returns a copy keeping only the rows in `rows`.
  FeatureDataset SelectRows(const std::vector<std::size_t>& rows) const;

  /// Distinct labels in ascending order.
  std::vector<int> Labels() const;
};

}  // namespace rpm::ml

#endif  // RPM_ML_FEATURE_DATASET_H_
