// Correlation-based Feature Selection (Hall 1999), the FSalg of
// Algorithm 2 line 22: picks a subset whose features correlate strongly
// with the class and weakly with each other, by best-first search over the
// CFS merit  k·r_cf / sqrt(k + k(k-1)·r_ff).
//
// Features here are continuous (closest-match distances); we use the
// correlation ratio (eta) for feature-class association — which reduces to
// |point-biserial| for two classes — and absolute Pearson correlation for
// feature-feature redundancy.

#ifndef RPM_ML_FEATURE_SELECTION_H_
#define RPM_ML_FEATURE_SELECTION_H_

#include <cstddef>
#include <vector>

#include "ml/feature_dataset.h"

namespace rpm::ml {

/// Pearson correlation of two columns; 0 when either is constant.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Correlation ratio eta in [0,1]: sqrt(between-class variance / total
/// variance) of `values` grouped by `labels`; 0 when variance vanishes.
double CorrelationRatio(const std::vector<double>& values,
                        const std::vector<int>& labels);

/// CFS merit of the subset `selected` given precomputed feature-class
/// correlations `rcf` and the feature-feature matrix `rff` (row-major,
/// n x n). Empty subsets have merit 0.
double CfsMerit(const std::vector<std::size_t>& selected,
                const std::vector<double>& rcf,
                const std::vector<double>& rff, std::size_t num_features);

/// Options for the best-first search.
struct CfsOptions {
  /// Search stops after this many consecutive non-improving expansions.
  std::size_t max_stale = 5;
  /// Never select more than this many features (0 = unlimited).
  std::size_t max_features = 0;
};

/// Runs CFS over `data`; returns selected column indices in ascending
/// order. Always returns at least one feature for non-degenerate input
/// (the single best-correlated one).
std::vector<std::size_t> CfsSelect(const FeatureDataset& data,
                                   const CfsOptions& options = {});

}  // namespace rpm::ml

#endif  // RPM_ML_FEATURE_SELECTION_H_
