#include "ml/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <set>

namespace rpm::ml {

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa < 1e-24 || sbb < 1e-24) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double CorrelationRatio(const std::vector<double>& values,
                        const std::vector<int>& labels) {
  const std::size_t n = std::min(values.size(), labels.size());
  if (n == 0) return 0.0;
  double grand = 0.0;
  for (std::size_t i = 0; i < n; ++i) grand += values[i];
  grand /= static_cast<double>(n);

  std::map<int, std::pair<double, std::size_t>> groups;  // sum, count
  for (std::size_t i = 0; i < n; ++i) {
    auto& [sum, count] = groups[labels[i]];
    sum += values[i];
    ++count;
  }
  double between = 0.0;
  for (const auto& [label, sc] : groups) {
    const double mean = sc.first / static_cast<double>(sc.second);
    between += static_cast<double>(sc.second) * (mean - grand) * (mean - grand);
  }
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += (values[i] - grand) * (values[i] - grand);
  }
  if (total < 1e-24) return 0.0;
  return std::sqrt(std::clamp(between / total, 0.0, 1.0));
}

double CfsMerit(const std::vector<std::size_t>& selected,
                const std::vector<double>& rcf,
                const std::vector<double>& rff,
                std::size_t num_features) {
  const std::size_t k = selected.size();
  if (k == 0) return 0.0;
  double sum_cf = 0.0;
  for (std::size_t f : selected) sum_cf += rcf[f];
  double sum_ff = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      sum_ff += rff[selected[i] * num_features + selected[j]];
    }
  }
  const double kd = static_cast<double>(k);
  const double denom = std::sqrt(kd + 2.0 * sum_ff);
  if (denom < 1e-24) return 0.0;
  return sum_cf / denom;
}

std::vector<std::size_t> CfsSelect(const FeatureDataset& data,
                                   const CfsOptions& options) {
  const std::size_t d = data.num_features();
  if (d == 0 || data.empty()) return {};

  // Columns, then the correlation structures.
  std::vector<std::vector<double>> cols(d, std::vector<double>(data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t f = 0; f < d; ++f) cols[f][i] = data.x[i][f];
  }
  std::vector<double> rcf(d);
  for (std::size_t f = 0; f < d; ++f) {
    rcf[f] = CorrelationRatio(cols[f], data.y);
  }
  std::vector<double> rff(d * d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      const double r = std::abs(PearsonCorrelation(cols[i], cols[j]));
      rff[i * d + j] = r;
      rff[j * d + i] = r;
    }
  }

  // Best-first search (greedy forward with a stale counter, Hall's
  // formulation restricted to additions, which is the common variant).
  std::vector<std::size_t> best_set;
  double best_merit = 0.0;
  std::vector<std::size_t> current;
  std::set<std::size_t> in_current;
  std::size_t stale = 0;
  while (stale < options.max_stale) {
    double round_best = -1.0;
    std::size_t round_feature = d;
    for (std::size_t f = 0; f < d; ++f) {
      if (in_current.count(f) > 0) continue;
      current.push_back(f);
      const double merit = CfsMerit(current, rcf, rff, d);
      current.pop_back();
      if (merit > round_best) {
        round_best = merit;
        round_feature = f;
      }
    }
    if (round_feature == d) break;  // All features already selected.
    current.push_back(round_feature);
    in_current.insert(round_feature);
    if (round_best > best_merit + 1e-12) {
      best_merit = round_best;
      best_set = current;
      stale = 0;
    } else {
      ++stale;
    }
    if (options.max_features > 0 && current.size() >= options.max_features &&
        !best_set.empty()) {
      break;
    }
    if (current.size() == d) break;
  }

  if (best_set.empty()) {
    // Degenerate data: fall back to the single best-correlated feature.
    const std::size_t best_f = static_cast<std::size_t>(
        std::max_element(rcf.begin(), rcf.end()) - rcf.begin());
    best_set = {best_f};
  }
  if (options.max_features > 0 && best_set.size() > options.max_features) {
    // Keep the highest-correlation members.
    std::sort(best_set.begin(), best_set.end(),
              [&](std::size_t a, std::size_t b) { return rcf[a] > rcf[b]; });
    best_set.resize(options.max_features);
  }
  std::sort(best_set.begin(), best_set.end());
  return best_set;
}

}  // namespace rpm::ml
