#include "ml/metrics.h"

#include <algorithm>
#include <set>

namespace rpm::ml {

double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& truth) {
  const std::size_t n = std::min(predicted.size(), truth.size());
  if (n == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (predicted[i] == truth[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

double ErrorRate(const std::vector<int>& predicted,
                 const std::vector<int>& truth) {
  return 1.0 - Accuracy(predicted, truth);
}

std::map<std::pair<int, int>, std::size_t> ConfusionMatrix(
    const std::vector<int>& predicted, const std::vector<int>& truth) {
  std::map<std::pair<int, int>, std::size_t> cm;
  const std::size_t n = std::min(predicted.size(), truth.size());
  for (std::size_t i = 0; i < n; ++i) {
    ++cm[{truth[i], predicted[i]}];
  }
  return cm;
}

std::map<int, ClassScore> PerClassScores(const std::vector<int>& predicted,
                                         const std::vector<int>& truth) {
  std::set<int> labels(truth.begin(), truth.end());
  labels.insert(predicted.begin(), predicted.end());
  const std::size_t n = std::min(predicted.size(), truth.size());

  std::map<int, ClassScore> out;
  for (int label : labels) {
    std::size_t tp = 0;
    std::size_t fp = 0;
    std::size_t fn = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool p = predicted[i] == label;
      const bool t = truth[i] == label;
      if (p && t) {
        ++tp;
      } else if (p) {
        ++fp;
      } else if (t) {
        ++fn;
      }
    }
    ClassScore score;
    if (tp + fp > 0) {
      score.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
    }
    if (tp + fn > 0) {
      score.recall = static_cast<double>(tp) / static_cast<double>(tp + fn);
    }
    if (score.precision + score.recall > 0.0) {
      score.f1 = 2.0 * score.precision * score.recall /
                 (score.precision + score.recall);
    }
    out[label] = score;
  }
  return out;
}

double MacroF1(const std::vector<int>& predicted,
               const std::vector<int>& truth) {
  const auto scores = PerClassScores(predicted, truth);
  if (scores.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& [label, s] : scores) acc += s.f1;
  return acc / static_cast<double>(scores.size());
}

}  // namespace rpm::ml
