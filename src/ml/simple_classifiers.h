// Alternative classifiers over the representative-pattern feature space.
// Section 3.1: "we use SVM for its popularity, but note that our
// algorithm can work with any classifier" — this module makes that claim
// executable: a common interface, k-NN and Gaussian Naive Bayes
// implementations, an SVM wrapper, and a factory keyed by kind.

#ifndef RPM_ML_SIMPLE_CLASSIFIERS_H_
#define RPM_ML_SIMPLE_CLASSIFIERS_H_

#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "ml/feature_dataset.h"
#include "ml/svm.h"

namespace rpm::ml {

/// Classifier over fixed-length feature vectors.
class FeatureClassifier {
 public:
  virtual ~FeatureClassifier() = default;
  virtual void Train(const FeatureDataset& data) = 0;
  virtual int Predict(std::span<const double> features) const = 0;
  virtual bool trained() const = 0;
  /// Text serialization of the trained state (model persistence).
  virtual void Save(std::ostream& out) const = 0;
  virtual void Load(std::istream& in) = 0;
};

/// k-nearest-neighbour over Euclidean feature distance (majority vote,
/// nearer neighbour breaks ties).
class KnnFeatureClassifier : public FeatureClassifier {
 public:
  explicit KnnFeatureClassifier(std::size_t k = 1) : k_(k) {}
  void Train(const FeatureDataset& data) override;
  int Predict(std::span<const double> features) const override;
  bool trained() const override { return !data_.empty(); }
  void Save(std::ostream& out) const override;
  void Load(std::istream& in) override;

 private:
  std::size_t k_;
  FeatureDataset data_;
};

/// Gaussian Naive Bayes: per-class, per-feature normal likelihoods with
/// variance smoothing; class priors from the training distribution.
class GaussianNaiveBayes : public FeatureClassifier {
 public:
  void Train(const FeatureDataset& data) override;
  int Predict(std::span<const double> features) const override;
  bool trained() const override { return !classes_.empty(); }
  void Save(std::ostream& out) const override;
  void Load(std::istream& in) override;

 private:
  struct ClassModel {
    int label = 0;
    double log_prior = 0.0;
    std::vector<double> mean;
    std::vector<double> variance;
  };
  std::vector<ClassModel> classes_;
};

/// Thin adapter exposing SvmClassifier through the common interface.
class SvmFeatureClassifier : public FeatureClassifier {
 public:
  explicit SvmFeatureClassifier(SvmOptions options = {}) : svm_(options) {}
  void Train(const FeatureDataset& data) override { svm_.Train(data); }
  int Predict(std::span<const double> features) const override {
    return svm_.Predict(features);
  }
  bool trained() const override { return svm_.trained(); }
  void Save(std::ostream& out) const override { svm_.Save(out); }
  void Load(std::istream& in) override { svm_.Load(in); }

 private:
  SvmClassifier svm_;
};

/// Which feature-space classifier RPM uses at the final stage.
enum class FeatureClassifierKind { kSvm, kKnn, kNaiveBayes };

/// Factory; `svm_options` only applies to kSvm, `knn_k` only to kKnn.
std::unique_ptr<FeatureClassifier> MakeFeatureClassifier(
    FeatureClassifierKind kind, const SvmOptions& svm_options = {},
    std::size_t knn_k = 1);

}  // namespace rpm::ml

#endif  // RPM_ML_SIMPLE_CLASSIFIERS_H_
