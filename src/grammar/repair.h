// Re-Pair grammar induction (Larsson & Moffat 1999): an *offline*
// alternative to Sequitur — repeatedly replace the globally most frequent
// digram with a fresh non-terminal until no digram repeats. The paper
// notes RPM "also works with other (context-free) GI algorithms"
// (Section 3.2.2); this backend makes that claim concrete and is ablated
// in bench/ablation_design.
//
// The returned Grammar has the same shape as Sequitur's (rule 0 = S,
// occurrence spans populated), so the motif-extraction layer is shared.

#ifndef RPM_GRAMMAR_REPAIR_H_
#define RPM_GRAMMAR_REPAIR_H_

#include <span>

#include "grammar/sequitur.h"

namespace rpm::grammar {

/// Runs Re-Pair over `tokens`. Every non-S rule has a two-symbol
/// right-hand side (a replaced digram) and at least two occurrences.
Grammar InferGrammarRePair(std::span<const std::uint32_t> tokens);

/// Which grammar-induction backend to use.
enum class GiAlgorithm { kSequitur, kRePair };

/// Dispatches on `algorithm`.
Grammar InferGrammarWith(GiAlgorithm algorithm,
                         std::span<const std::uint32_t> tokens);

}  // namespace rpm::grammar

#endif  // RPM_GRAMMAR_REPAIR_H_
