// Grammar/motif inspection utilities in the spirit of GrammarViz (the
// authors' companion tool, used for the paper's Figure 4): rule summary
// tables, per-point rule-coverage density (GrammarViz's motif/anomaly
// heat strip), and human-readable rule dumps with their raw-subsequence
// spans. Used by examples/grammar_inspect and handy for exploratory work
// on new datasets.

#ifndef RPM_GRAMMAR_INSPECT_H_
#define RPM_GRAMMAR_INSPECT_H_

#include <string>
#include <vector>

#include "grammar/motifs.h"

namespace rpm::grammar {

/// Aggregate statistics of one motif candidate (a repeated rule mapped to
/// the time domain).
struct MotifStats {
  int rule_id = 0;
  std::size_t occurrences = 0;
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  double mean_length = 0.0;
  /// occurrences * mean_length — a GrammarViz-style "interest" score that
  /// favours long, frequent motifs.
  double mass = 0.0;
};

/// Stats for every motif, sorted by descending mass.
std::vector<MotifStats> SummarizeMotifs(
    const std::vector<MotifCandidate>& motifs);

/// Per-point coverage density: density[t] = number of motif occurrences
/// whose interval contains t. Low-density valleys are candidate
/// discords/anomalies; plateaus are motif regions.
std::vector<std::size_t> CoverageDensity(
    const std::vector<MotifCandidate>& motifs, std::size_t series_length);

/// Fraction of points covered by at least one occurrence.
double CoverageFraction(const std::vector<MotifCandidate>& motifs,
                        std::size_t series_length);

/// Multi-line table of motif stats ("rule occ len[min..max] mass").
std::string FormatMotifTable(const std::vector<MotifCandidate>& motifs);

/// A discord candidate: the region least explained by the grammar.
struct Discord {
  std::size_t start = 0;
  std::size_t length = 0;
  /// Mean rule density over the region (lower = more anomalous).
  double mean_density = 0.0;
};

/// GrammarViz-v2-style discord discovery: slide a window of
/// `discord_length` over the rule-coverage density curve and return up to
/// `max_discords` non-overlapping windows with the lowest mean density,
/// most anomalous first. Intuition: subsequences that never participate
/// in grammar rules are the rarest patterns in the series.
std::vector<Discord> FindDiscords(const std::vector<MotifCandidate>& motifs,
                                  std::size_t series_length,
                                  std::size_t discord_length,
                                  std::size_t max_discords = 3);

}  // namespace rpm::grammar

#endif  // RPM_GRAMMAR_INSPECT_H_
