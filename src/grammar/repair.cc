#include "grammar/repair.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace rpm::grammar {
namespace {

// Symbol encoding inside the working sequence: values >= 0 are terminals,
// values < 0 reference rule (-v - 1), matching GrammarRule::rhs.
using Sym = std::int64_t;

struct PairHash {
  std::size_t operator()(const std::pair<Sym, Sym>& p) const {
    const auto a = static_cast<std::uint64_t>(p.first);
    const auto b = static_cast<std::uint64_t>(p.second);
    std::uint64_t x = a * 0x9e3779b97f4a7c15ull;
    x ^= b + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
    return static_cast<std::size_t>(x);
  }
};

// Doubly-linked representation over a fixed array with tombstones, so
// digram replacement is O(1) per occurrence.
struct WorkSequence {
  std::vector<Sym> value;
  std::vector<std::ptrdiff_t> prev;
  std::vector<std::ptrdiff_t> next;
  std::ptrdiff_t head = -1;

  explicit WorkSequence(std::span<const std::uint32_t> tokens) {
    const auto n = static_cast<std::ptrdiff_t>(tokens.size());
    value.resize(tokens.size());
    prev.resize(tokens.size());
    next.resize(tokens.size());
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      value[static_cast<std::size_t>(i)] = tokens[static_cast<std::size_t>(i)];
      prev[static_cast<std::size_t>(i)] = i - 1;
      next[static_cast<std::size_t>(i)] = (i + 1 < n) ? i + 1 : -1;
    }
    head = n > 0 ? 0 : -1;
  }

  Sym at(std::ptrdiff_t i) const { return value[static_cast<std::size_t>(i)]; }
};

using PairPositions =
    std::unordered_map<std::pair<Sym, Sym>, std::vector<std::ptrdiff_t>,
                       PairHash>;

// Rebuilds the digram-position index from scratch. Called once per round;
// each round strictly shrinks the live sequence, so total work is
// O(n * rounds) with rounds bounded by the number of created rules.
PairPositions BuildIndex(const WorkSequence& seq) {
  PairPositions index;
  for (std::ptrdiff_t i = seq.head; i != -1 && seq.next[static_cast<std::size_t>(i)] != -1;
       i = seq.next[static_cast<std::size_t>(i)]) {
    const std::ptrdiff_t j = seq.next[static_cast<std::size_t>(i)];
    index[{seq.at(i), seq.at(j)}].push_back(i);
  }
  return index;
}

}  // namespace

Grammar InferGrammarRePair(std::span<const std::uint32_t> tokens) {
  if (tokens.empty()) {
    return Grammar({GrammarRule{0, {}, 0, {}}}, 0);
  }
  WorkSequence seq(tokens);
  std::vector<std::pair<Sym, Sym>> rule_bodies;  // rule r -> replaced pair

  while (true) {
    const PairPositions index = BuildIndex(seq);
    // Most frequent digram, counting non-overlapping occurrences.
    std::pair<Sym, Sym> best_pair{0, 0};
    std::size_t best_count = 1;
    for (const auto& [pair, positions] : index) {
      std::size_t count = positions.size();
      if (pair.first == pair.second) {
        // Overlapping runs (aaa) contribute floor(run/2) usable pairs; a
        // cheap upper-bound correction: count every other occurrence.
        count = (count + 1) / 2;
      }
      if (count > best_count ||
          (count == best_count && count > 1 && pair < best_pair)) {
        best_count = count;
        best_pair = pair;
      }
    }
    if (best_count < 2) break;

    const Sym new_sym = -static_cast<Sym>(rule_bodies.size()) - 2;
    // Rule ids start at 1 (0 is S): rule k encodes as -(k)-1, so the
    // first created rule is symbol -2.
    rule_bodies.push_back(best_pair);

    // Replace left-to-right, skipping overlaps.
    const auto& positions = index.at(best_pair);
    std::ptrdiff_t last_end = -1;
    for (std::ptrdiff_t i : positions) {
      auto iu = static_cast<std::size_t>(i);
      if (seq.at(i) != best_pair.first) continue;  // already consumed
      const std::ptrdiff_t j = seq.next[iu];
      if (j == -1 || seq.at(j) != best_pair.second) continue;
      if (i <= last_end) continue;  // overlapping occurrence
      auto ju = static_cast<std::size_t>(j);
      // Contract (i, j) -> i carrying the new symbol.
      seq.value[iu] = new_sym;
      const std::ptrdiff_t after = seq.next[ju];
      seq.next[iu] = after;
      if (after != -1) seq.prev[static_cast<std::size_t>(after)] = i;
      last_end = j;
    }
  }

  // Assemble rules: S is the remaining sequence.
  std::vector<GrammarRule> rules(rule_bodies.size() + 1);
  rules[0].id = 0;
  for (std::ptrdiff_t i = seq.head; i != -1;
       i = seq.next[static_cast<std::size_t>(i)]) {
    rules[0].rhs.push_back(seq.at(i));
  }
  for (std::size_t r = 0; r < rule_bodies.size(); ++r) {
    rules[r + 1].id = static_cast<int>(r + 1);
    rules[r + 1].rhs = {rule_bodies[r].first, rule_bodies[r].second};
  }

  // Expanded lengths: rule bodies only reference earlier-created rules,
  // so increasing id order is already bottom-up; S last.
  std::vector<std::size_t> len(rules.size(), 0);
  for (std::size_t id = 1; id < rules.size(); ++id) {
    std::size_t total = 0;
    for (Sym v : rules[id].rhs) {
      total += v >= 0 ? 1 : len[static_cast<std::size_t>(-v - 1)];
    }
    len[id] = total;
    rules[id].expanded_length = total;
  }
  {
    std::size_t total = 0;
    for (Sym v : rules[0].rhs) {
      total += v >= 0 ? 1 : len[static_cast<std::size_t>(-v - 1)];
    }
    len[0] = total;
    rules[0].expanded_length = total;
  }

  // Occurrence spans via the same full walk used for Sequitur.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
  std::size_t pos = 0;
  while (!stack.empty()) {
    auto& [rid, idx] = stack.back();
    const auto& rhs = rules[rid].rhs;
    if (idx >= rhs.size()) {
      stack.pop_back();
      continue;
    }
    const Sym v = rhs[idx++];
    if (v >= 0) {
      ++pos;
    } else {
      const auto child = static_cast<std::size_t>(-v - 1);
      rules[child].occurrences.push_back(
          RuleOccurrence{pos, pos + len[child] - 1});
      stack.emplace_back(child, 0);
    }
  }

  return Grammar(std::move(rules), tokens.size());
}

Grammar InferGrammarWith(GiAlgorithm algorithm,
                         std::span<const std::uint32_t> tokens) {
  switch (algorithm) {
    case GiAlgorithm::kRePair:
      return InferGrammarRePair(tokens);
    case GiAlgorithm::kSequitur:
    default:
      return InferGrammar(tokens);
  }
}

}  // namespace rpm::grammar
