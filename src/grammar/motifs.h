// Bridges SAX discretization and grammar induction: builds the token
// vocabulary, runs Sequitur, and maps each rule occurrence back to a raw
// subsequence interval of the source series (Section 3.2.2 / Figure 4).
// Because of numerosity reduction, occurrences of the same rule map to
// subsequences of different lengths.

#ifndef RPM_GRAMMAR_MOTIFS_H_
#define RPM_GRAMMAR_MOTIFS_H_

#include <cstddef>
#include <vector>

#include "grammar/repair.h"
#include "grammar/sequitur.h"
#include "sax/sax.h"
#include "ts/series.h"

namespace rpm::grammar {

/// A half-open interval [start, start + length) in the raw time domain.
struct Interval {
  std::size_t start = 0;
  std::size_t length = 0;

  std::size_t end() const { return start + length; }
  bool operator==(const Interval&) const = default;
};

/// One repeated grammar rule mapped back to the time domain: the rule id
/// and the raw-subsequence interval of every occurrence.
struct MotifCandidate {
  int rule_id = 0;
  std::vector<Interval> intervals;
};

/// Assigns dense token ids to SAX words in order of first appearance.
std::vector<std::uint32_t> TokensFromRecords(
    const std::vector<sax::SaxRecord>& records);

/// Maps one rule occurrence (token span) to its raw interval. The interval
/// runs from the first window's start to the last window's end, clamped to
/// `series_length`.
Interval OccurrenceToInterval(const RuleOccurrence& occ,
                              const std::vector<sax::SaxRecord>& records,
                              std::size_t window, std::size_t series_length);

/// Runs Sequitur over the record words and returns, for every repeated
/// rule (>= 2 occurrences), the raw intervals of its occurrences.
///
/// `boundaries`: sorted start offsets of the instances concatenated into
/// the series (excluding 0). Occurrences whose interval spans a boundary
/// are dropped when `filter_junctions` is true, per the paper's "avoid
/// concatenation artifacts" rule (Figure 4). A motif is kept only if at
/// least 2 occurrences survive.
std::vector<MotifCandidate> FindMotifCandidates(
    const std::vector<sax::SaxRecord>& records, std::size_t window,
    std::size_t series_length, const std::vector<std::size_t>& boundaries,
    bool filter_junctions = true,
    GiAlgorithm algorithm = GiAlgorithm::kSequitur);

}  // namespace rpm::grammar

#endif  // RPM_GRAMMAR_MOTIFS_H_
