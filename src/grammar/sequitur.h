// Sequitur context-free grammar induction (Nevill-Manning & Witten 1997),
// the Step-2 substrate of RPM (Section 3.2.2): every digram occurring more
// than once is reduced to a rule, in time and space linear in the input.
//
// Tokens are opaque 32-bit ids; the caller maps SAX words to ids (see
// grammar/motifs.h). After inference, each rule carries its expanded
// terminal length and every occurrence's [first,last] token span in the
// original sequence — the offset bookkeeping the paper relies on to map
// rules back to raw subsequences of *variable* length.

#ifndef RPM_GRAMMAR_SEQUITUR_H_
#define RPM_GRAMMAR_SEQUITUR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rpm::grammar {

/// One occurrence of a rule in the input: the inclusive token span it
/// expands to.
struct RuleOccurrence {
  std::size_t first_token = 0;
  std::size_t last_token = 0;

  bool operator==(const RuleOccurrence&) const = default;
};

/// A grammar rule. Rule 0 is the top-level rule S covering the whole
/// input; its occurrence list is empty by convention.
struct GrammarRule {
  int id = 0;
  /// Right-hand side: values >= 0 are terminal token ids; value v < 0
  /// references rule (-v - 1).
  std::vector<std::int64_t> rhs;
  /// Number of terminals this rule expands to.
  std::size_t expanded_length = 0;
  /// Every place the rule occurs in the input (directly or via nesting).
  std::vector<RuleOccurrence> occurrences;
};

/// An induced grammar.
class Grammar {
 public:
  Grammar() = default;
  Grammar(std::vector<GrammarRule> rules, std::size_t sequence_length)
      : rules_(std::move(rules)), sequence_length_(sequence_length) {}

  const std::vector<GrammarRule>& rules() const { return rules_; }
  std::size_t sequence_length() const { return sequence_length_; }

  /// Rules other than S, i.e. the repeated patterns (id >= 1).
  std::vector<const GrammarRule*> RepeatedRules() const;

  /// Fully expands rule `id` to its terminal token sequence.
  std::vector<std::uint32_t> Expand(int id) const;

  /// Human-readable dump ("R1 -> 17 R2 ..."), for debugging/examples.
  std::string ToString() const;

 private:
  std::vector<GrammarRule> rules_;
  std::size_t sequence_length_ = 0;
};

/// Runs Sequitur over `tokens` and returns the grammar with occurrence
/// spans populated. Digram uniqueness and rule utility are enforced as in
/// the original algorithm; the whole inference is O(|tokens|).
Grammar InferGrammar(std::span<const std::uint32_t> tokens);

}  // namespace rpm::grammar

#endif  // RPM_GRAMMAR_SEQUITUR_H_
