#include "grammar/motifs.h"

#include <algorithm>
#include <unordered_map>

namespace rpm::grammar {

std::vector<std::uint32_t> TokensFromRecords(
    const std::vector<sax::SaxRecord>& records) {
  std::vector<std::uint32_t> tokens;
  tokens.reserve(records.size());
  std::unordered_map<std::string, std::uint32_t> vocab;
  for (const auto& rec : records) {
    auto [it, inserted] =
        vocab.try_emplace(rec.word, static_cast<std::uint32_t>(vocab.size()));
    tokens.push_back(it->second);
  }
  return tokens;
}

Interval OccurrenceToInterval(const RuleOccurrence& occ,
                              const std::vector<sax::SaxRecord>& records,
                              std::size_t window,
                              std::size_t series_length) {
  const std::size_t start = records[occ.first_token].offset;
  const std::size_t end =
      std::min(series_length, records[occ.last_token].offset + window);
  return Interval{start, end - start};
}

namespace {

// True when [start, end) crosses any concatenation boundary.
bool SpansBoundary(const Interval& iv,
                   const std::vector<std::size_t>& boundaries) {
  const auto it = std::upper_bound(boundaries.begin(), boundaries.end(),
                                   iv.start);
  return it != boundaries.end() && *it < iv.end();
}

}  // namespace

std::vector<MotifCandidate> FindMotifCandidates(
    const std::vector<sax::SaxRecord>& records, std::size_t window,
    std::size_t series_length, const std::vector<std::size_t>& boundaries,
    bool filter_junctions, GiAlgorithm algorithm) {
  std::vector<MotifCandidate> out;
  if (records.empty()) return out;
  const std::vector<std::uint32_t> tokens = TokensFromRecords(records);
  const Grammar grammar = InferGrammarWith(algorithm, tokens);
  for (const GrammarRule* rule : grammar.RepeatedRules()) {
    MotifCandidate cand;
    cand.rule_id = rule->id;
    for (const RuleOccurrence& occ : rule->occurrences) {
      Interval iv =
          OccurrenceToInterval(occ, records, window, series_length);
      if (iv.length == 0) continue;
      if (filter_junctions && SpansBoundary(iv, boundaries)) continue;
      cand.intervals.push_back(iv);
    }
    if (cand.intervals.size() >= 2) out.push_back(std::move(cand));
  }
  return out;
}

}  // namespace rpm::grammar
