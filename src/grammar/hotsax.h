// HOT SAX discord discovery (Keogh, Lin & Fu 2005): the exact
// nearest-neighbor-based discord definition, with the heuristic
// outer/inner-loop ordering that makes it fast — rare SAX words first in
// the outer loop, same-word neighbors first in the inner loop, early
// abandoning everywhere. GrammarViz v2 (this paper's companion system)
// validated its rule-density discords against HOT SAX; both live here so
// the comparison is runnable (bench/extensions_bench).

#ifndef RPM_GRAMMAR_HOTSAX_H_
#define RPM_GRAMMAR_HOTSAX_H_

#include <cstddef>
#include <vector>

#include "sax/sax.h"
#include "ts/series.h"

namespace rpm::grammar {

/// A HOT SAX discord: the subsequence whose distance to its nearest
/// non-overlapping neighbor is largest.
struct HotSaxDiscord {
  std::size_t start = 0;
  std::size_t length = 0;
  /// z-normalized Euclidean distance to the nearest non-self match.
  double nn_distance = 0.0;
};

struct HotSaxOptions {
  std::size_t discord_length = 32;
  std::size_t max_discords = 1;
  /// SAX parameters of the ordering heuristic (word granularity only
  /// affects speed, not the result).
  std::size_t paa_size = 3;
  int alphabet = 3;
};

/// Finds up to `max_discords` non-overlapping discords of
/// `options.discord_length` in `series`. Exact under the discord
/// definition (brute-force-equivalent result); the SAX ordering only
/// accelerates. Returns fewer discords when the series is too short.
std::vector<HotSaxDiscord> FindHotSaxDiscords(ts::SeriesView series,
                                              const HotSaxOptions& options);

}  // namespace rpm::grammar

#endif  // RPM_GRAMMAR_HOTSAX_H_
