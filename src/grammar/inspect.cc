#include "grammar/inspect.h"

#include <algorithm>
#include <sstream>

namespace rpm::grammar {

std::vector<MotifStats> SummarizeMotifs(
    const std::vector<MotifCandidate>& motifs) {
  std::vector<MotifStats> out;
  out.reserve(motifs.size());
  for (const auto& m : motifs) {
    if (m.intervals.empty()) continue;
    MotifStats s;
    s.rule_id = m.rule_id;
    s.occurrences = m.intervals.size();
    s.min_length = m.intervals.front().length;
    s.max_length = s.min_length;
    double total = 0.0;
    for (const auto& iv : m.intervals) {
      s.min_length = std::min(s.min_length, iv.length);
      s.max_length = std::max(s.max_length, iv.length);
      total += static_cast<double>(iv.length);
    }
    s.mean_length = total / static_cast<double>(s.occurrences);
    s.mass = total;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const MotifStats& a, const MotifStats& b) {
              if (a.mass != b.mass) return a.mass > b.mass;
              return a.rule_id < b.rule_id;
            });
  return out;
}

std::vector<std::size_t> CoverageDensity(
    const std::vector<MotifCandidate>& motifs, std::size_t series_length) {
  // Difference array for O(total occurrences + n) accumulation.
  std::vector<std::ptrdiff_t> delta(series_length + 1, 0);
  for (const auto& m : motifs) {
    for (const auto& iv : m.intervals) {
      if (iv.start >= series_length) continue;
      ++delta[iv.start];
      --delta[std::min(iv.end(), series_length)];
    }
  }
  std::vector<std::size_t> density(series_length, 0);
  std::ptrdiff_t run = 0;
  for (std::size_t t = 0; t < series_length; ++t) {
    run += delta[t];
    density[t] = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, run));
  }
  return density;
}

double CoverageFraction(const std::vector<MotifCandidate>& motifs,
                        std::size_t series_length) {
  if (series_length == 0) return 0.0;
  const auto density = CoverageDensity(motifs, series_length);
  std::size_t covered = 0;
  for (std::size_t d : density) covered += d > 0 ? 1 : 0;
  return static_cast<double>(covered) / static_cast<double>(series_length);
}

std::vector<Discord> FindDiscords(const std::vector<MotifCandidate>& motifs,
                                  std::size_t series_length,
                                  std::size_t discord_length,
                                  std::size_t max_discords) {
  std::vector<Discord> out;
  if (discord_length == 0 || series_length < discord_length ||
      max_discords == 0) {
    return out;
  }
  const auto density = CoverageDensity(motifs, series_length);
  // Prefix sums give each window's mean density in O(1).
  std::vector<double> prefix(series_length + 1, 0.0);
  for (std::size_t t = 0; t < series_length; ++t) {
    prefix[t + 1] = prefix[t] + static_cast<double>(density[t]);
  }
  const std::size_t positions = series_length - discord_length + 1;
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(positions);
  for (std::size_t pos = 0; pos < positions; ++pos) {
    const double mean = (prefix[pos + discord_length] - prefix[pos]) /
                        static_cast<double>(discord_length);
    scored.emplace_back(mean, pos);
  }
  std::sort(scored.begin(), scored.end());
  for (const auto& [mean, pos] : scored) {
    bool overlaps = false;
    for (const auto& d : out) {
      if (pos < d.start + d.length && d.start < pos + discord_length) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    out.push_back(Discord{pos, discord_length, mean});
    if (out.size() >= max_discords) break;
  }
  return out;
}

std::string FormatMotifTable(const std::vector<MotifCandidate>& motifs) {
  std::ostringstream os;
  os << "rule    occ   len(min..mean..max)   mass\n";
  for (const auto& s : SummarizeMotifs(motifs)) {
    os << 'R' << s.rule_id << '\t' << s.occurrences << '\t' << s.min_length
       << ".." << static_cast<std::size_t>(s.mean_length) << ".."
       << s.max_length << '\t' << s.mass << '\n';
  }
  return os.str();
}

}  // namespace rpm::grammar
