#include "grammar/hotsax.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "distance/euclidean.h"
#include "ts/znorm.h"

namespace rpm::grammar {
namespace {

// Distance between two z-normalized windows of `series`.
double WindowDistance(const std::vector<ts::Series>& znormed,
                      std::size_t a, std::size_t b, double cutoff) {
  const double sq = distance::SquaredEuclideanEarlyAbandon(
      znormed[a], znormed[b], cutoff * cutoff);
  return std::sqrt(sq);
}

}  // namespace

std::vector<HotSaxDiscord> FindHotSaxDiscords(ts::SeriesView series,
                                              const HotSaxOptions& options) {
  std::vector<HotSaxDiscord> out;
  const std::size_t n = options.discord_length;
  if (n == 0 || series.size() < 2 * n) return out;
  const std::size_t positions = series.size() - n + 1;

  // Precompute z-normalized windows and their SAX words.
  std::vector<ts::Series> znormed(positions);
  std::vector<std::string> words(positions);
  std::unordered_map<std::string, std::vector<std::size_t>> buckets;
  for (std::size_t p = 0; p < positions; ++p) {
    znormed[p].assign(series.begin() + static_cast<std::ptrdiff_t>(p),
                      series.begin() + static_cast<std::ptrdiff_t>(p + n));
    ts::ZNormalizeInPlace(znormed[p]);
    words[p] =
        sax::SaxWord(znormed[p], options.paa_size, options.alphabet);
    buckets[words[p]].push_back(p);
  }

  // Outer-loop order: rare words first (most likely discords).
  std::vector<std::size_t> outer(positions);
  for (std::size_t p = 0; p < positions; ++p) outer[p] = p;
  std::sort(outer.begin(), outer.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t ca = buckets[words[a]].size();
    const std::size_t cb = buckets[words[b]].size();
    if (ca != cb) return ca < cb;
    return a < b;
  });

  std::vector<char> claimed(positions, 0);  // overlap mask for multi-discord
  auto overlaps_claimed = [&](std::size_t p) {
    const std::size_t lo = p >= n - 1 ? p - (n - 1) : 0;
    const std::size_t hi = std::min(positions - 1, p + n - 1);
    for (std::size_t q = lo; q <= hi; ++q) {
      if (claimed[q]) return true;
    }
    return false;
  };

  for (std::size_t round = 0; round < options.max_discords; ++round) {
    double best_nn = -1.0;
    std::size_t best_pos = positions;
    for (std::size_t p : outer) {
      if (overlaps_claimed(p)) continue;
      // Inner loop: same-word neighbors first (likely small distances ->
      // early abandon), then the rest.
      double nn = std::numeric_limits<double>::infinity();
      auto visit = [&](std::size_t q) {
        if (q == p) return;
        const std::size_t gap = q > p ? q - p : p - q;
        if (gap < n) return;  // self-match exclusion (non-overlapping)
        const double cutoff = std::min(nn, 1e18);
        const double d = WindowDistance(znormed, p, q, cutoff);
        nn = std::min(nn, d);
      };
      bool abandoned = false;
      for (std::size_t q : buckets[words[p]]) {
        visit(q);
        if (nn <= best_nn) {
          abandoned = true;  // cannot beat the best-so-far discord
          break;
        }
      }
      if (!abandoned) {
        for (std::size_t q = 0; q < positions; ++q) {
          visit(q);
          if (nn <= best_nn) {
            abandoned = true;
            break;
          }
        }
      }
      if (!abandoned && std::isfinite(nn) && nn > best_nn) {
        best_nn = nn;
        best_pos = p;
      }
    }
    if (best_pos == positions) break;
    out.push_back(HotSaxDiscord{best_pos, n, best_nn});
    claimed[best_pos] = 1;
  }
  return out;
}

}  // namespace rpm::grammar
