#include "grammar/sequitur.h"

#include <cassert>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace rpm::grammar {
namespace {

// Internal linked-symbol representation, closely following the reference
// implementation from Nevill-Manning & Witten. A symbol's `value` encodes
// a terminal as (token << 1) | 1 and a non-terminal as the Rule pointer
// (pointers are at least 2-byte aligned, so the low bit distinguishes).

class Rule;
class Sym;

using DigramKey = std::pair<std::uintptr_t, std::uintptr_t>;

struct DigramKeyHash {
  std::size_t operator()(const DigramKey& k) const {
    // Splitmix-style mix of the two halves.
    std::uint64_t x = static_cast<std::uint64_t>(k.first) * 0x9e3779b97f4a7c15ull;
    x ^= static_cast<std::uint64_t>(k.second) + 0x9e3779b97f4a7c15ull +
         (x << 6) + (x >> 2);
    return static_cast<std::size_t>(x);
  }
};

using DigramIndex = std::unordered_map<DigramKey, Sym*, DigramKeyHash>;

// Shared mutable state for one inference run. Tracks live rules so the
// whole symbol graph can be reclaimed after extraction (the reference
// implementation leaks it).
struct Context {
  DigramIndex digrams;
  int next_rule_number = 0;
  std::unordered_set<Rule*> live_rules;
};

class Sym {
 public:
  Sym* next = nullptr;
  Sym* prev = nullptr;
  std::uintptr_t value = 0;
  Context* ctx = nullptr;

  Sym(std::uint32_t terminal, Context* c)
      : value((static_cast<std::uintptr_t>(terminal) << 1) | 1u), ctx(c) {}
  Sym(Rule* r, Context* c);  // non-terminal; bumps the rule's use count

  ~Sym();

  bool IsTerminal() const { return (value & 1u) != 0; }
  bool IsNonTerminal() const { return value != 0 && (value & 1u) == 0; }
  std::uint32_t Terminal() const {
    return static_cast<std::uint32_t>(value >> 1);
  }
  Rule* RulePtr() const { return reinterpret_cast<Rule*>(value); }
  bool IsGuard() const;

  // Links `left` before `right`, retiring the digram that used to start
  // at `left`.
  static void Join(Sym* left, Sym* right);

  // Inserts `y` immediately after this symbol.
  void InsertAfter(Sym* y) {
    Join(y, next);
    Join(this, y);
  }

  // Removes this digram's index entry if it points at this symbol.
  void DeleteDigram();

  // Checks the digram (this, next) against the index; triggers a match
  // when it already occurs elsewhere. Returns true if a reduction ran.
  bool Check();

  // Replaces the digram starting at this symbol with non-terminal `r`.
  void Substitute(Rule* r);

  // Deals with a matching digram pair (`s`, `m` start equal digrams).
  static void Match(Sym* s, Sym* m);

  // This is the last use of its rule: splice the rule body in place.
  void Expand();

  DigramKey KeyWith(const Sym* b) const { return {value, b->value}; }
};

class Rule {
 public:
  explicit Rule(Context* c) : ctx(c), number(c->next_rule_number++) {
    guard = new Sym(this, c);
    guard->next = guard;
    guard->prev = guard;
    use_count = 0;  // The guard's back-reference does not count as a use.
    c->live_rules.insert(this);
  }
  ~Rule() {
    ctx->live_rules.erase(this);
    delete guard;
  }

  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;

  Sym* First() const { return guard->next; }
  Sym* Last() const { return guard->prev; }

  void Reuse() { ++use_count; }
  void Deuse() { --use_count; }

  Sym* guard = nullptr;
  Context* ctx = nullptr;
  int use_count = 0;
  int number = 0;
};

Sym::Sym(Rule* r, Context* c)
    : value(reinterpret_cast<std::uintptr_t>(r)), ctx(c) {
  r->Reuse();
}

Sym::~Sym() {
  if (prev != nullptr && next != nullptr) {
    Join(prev, next);
  }
  if (!IsGuard()) {
    DeleteDigram();
    if (IsNonTerminal()) RulePtr()->Deuse();
  }
}

bool Sym::IsGuard() const {
  return IsNonTerminal() && RulePtr()->guard == this;
}

void Sym::Join(Sym* left, Sym* right) {
  if (left->next != nullptr) left->DeleteDigram();
  left->next = right;
  right->prev = left;
}

void Sym::DeleteDigram() {
  if (IsGuard() || next == nullptr || next->IsGuard()) return;
  auto it = ctx->digrams.find(KeyWith(next));
  if (it != ctx->digrams.end() && it->second == this) {
    ctx->digrams.erase(it);
  }
}

bool Sym::Check() {
  if (IsGuard() || next->IsGuard()) return false;
  auto [it, inserted] = ctx->digrams.try_emplace(KeyWith(next), this);
  if (inserted) return false;
  Sym* found = it->second;
  if (found == this) return false;
  // Overlapping digrams (e.g. "aaa") are not reduced.
  if (found->next != this) Match(this, found);
  return true;
}

void Sym::Substitute(Rule* r) {
  // Capture locals first: the first delete frees *this*, so no member may
  // be touched afterwards.
  Sym* q = prev;
  Context* c = ctx;
  // Drop this symbol and its successor, then splice in the non-terminal.
  delete q->next;
  delete q->next;
  q->InsertAfter(new Sym(r, c));
  if (!q->Check()) q->next->Check();
}

void Sym::Match(Sym* s, Sym* m) {
  Rule* r = nullptr;
  if (m->prev->IsGuard() && m->next->next->IsGuard()) {
    // The matching digram is exactly an existing rule's body: reuse it.
    r = m->prev->RulePtr();
    s->Substitute(r);
  } else {
    Context* ctx = s->ctx;
    r = new Rule(ctx);
    // Copy the digram into the new rule's body.
    if (s->IsNonTerminal()) {
      r->Last()->InsertAfter(new Sym(s->RulePtr(), ctx));
    } else {
      r->Last()->InsertAfter(new Sym(s->Terminal(), ctx));
    }
    if (s->next->IsNonTerminal()) {
      r->Last()->InsertAfter(new Sym(s->next->RulePtr(), ctx));
    } else {
      r->Last()->InsertAfter(new Sym(s->next->Terminal(), ctx));
    }
    m->Substitute(r);
    s->Substitute(r);
    ctx->digrams[r->First()->KeyWith(r->First()->next)] = r->First();
  }
  // Rule utility: a rule used once gets inlined.
  if (r->First()->IsNonTerminal() && r->First()->RulePtr()->use_count == 1) {
    r->First()->Expand();
  }
}

void Sym::Expand() {
  Sym* left = prev;
  Sym* right = next;
  Rule* r = RulePtr();
  Sym* first = r->First();
  Sym* last = r->Last();
  Context* c = ctx;

  DeleteDigram();  // Unindex (this, right).

  // Detach the body from the guard so ~Rule() doesn't free it.
  r->guard->next = r->guard;
  r->guard->prev = r->guard;
  delete r;

  value = 0;  // Neutralize so the destructor neither deuses nor unindexes.
  prev = nullptr;
  next = nullptr;
  delete this;

  // Relink manually: Join() would probe the freed guard/symbol through
  // DeleteDigram. The only indexed digram touched, (this, right), was
  // removed above; (left, this) starts at a guard and is never indexed.
  left->next = first;
  first->prev = left;
  last->next = right;
  right->prev = last;
  c->digrams[last->KeyWith(right)] = last;
}

// ---------------------------------------------------------------------
// Extraction: linearize the live grammar into GrammarRule structs and
// compute occurrence spans by a full expansion walk of rule S.

struct Extractor {
  std::unordered_map<const Rule*, int> ids;
  std::vector<const Rule*> order;

  int IdOf(const Rule* r) {
    auto it = ids.find(r);
    if (it != ids.end()) return it->second;
    const int id = static_cast<int>(order.size());
    ids.emplace(r, id);
    order.push_back(r);
    return id;
  }
};

}  // namespace

std::vector<const GrammarRule*> Grammar::RepeatedRules() const {
  std::vector<const GrammarRule*> out;
  for (const auto& r : rules_) {
    if (r.id != 0) out.push_back(&r);
  }
  return out;
}

std::vector<std::uint32_t> Grammar::Expand(int id) const {
  std::vector<std::uint32_t> out;
  // Iterative stack expansion to avoid deep recursion on long inputs.
  std::vector<std::pair<int, std::size_t>> stack{{id, 0}};
  while (!stack.empty()) {
    auto& [rid, pos] = stack.back();
    const auto& rhs = rules_[static_cast<std::size_t>(rid)].rhs;
    if (pos >= rhs.size()) {
      stack.pop_back();
      continue;
    }
    const std::int64_t v = rhs[pos++];
    if (v >= 0) {
      out.push_back(static_cast<std::uint32_t>(v));
    } else {
      stack.emplace_back(static_cast<int>(-v - 1), 0);
    }
  }
  return out;
}

std::string Grammar::ToString() const {
  std::ostringstream os;
  for (const auto& r : rules_) {
    os << (r.id == 0 ? "S" : "R" + std::to_string(r.id)) << " ->";
    for (std::int64_t v : r.rhs) {
      if (v >= 0) {
        os << ' ' << v;
      } else {
        os << " R" << (-v - 1);
      }
    }
    os << "   [len=" << r.expanded_length
       << " occ=" << r.occurrences.size() << "]\n";
  }
  return os.str();
}

Grammar InferGrammar(std::span<const std::uint32_t> tokens) {
  if (tokens.empty()) {
    return Grammar({GrammarRule{0, {}, 0, {}}}, 0);
  }
  Context ctx;
  auto* start = new Rule(&ctx);
  for (std::uint32_t t : tokens) {
    start->Last()->InsertAfter(new Sym(t, &ctx));
    start->Last()->prev->Check();
  }

  // Assign dense ids (S first) and copy out the right-hand sides.
  Extractor ex;
  ex.IdOf(start);
  std::vector<GrammarRule> rules;
  for (std::size_t i = 0; i < ex.order.size(); ++i) {
    const Rule* r = ex.order[i];
    GrammarRule out;
    out.id = static_cast<int>(i);
    for (Sym* s = r->First(); !s->IsGuard(); s = s->next) {
      if (s->IsTerminal()) {
        out.rhs.push_back(static_cast<std::int64_t>(s->Terminal()));
      } else {
        out.rhs.push_back(-static_cast<std::int64_t>(ex.IdOf(s->RulePtr())) -
                          1);
      }
    }
    rules.push_back(std::move(out));
    // IdOf may have appended new rules to ex.order; the loop bound is
    // re-evaluated each iteration, so they are picked up.
  }

  // Expanded lengths, bottom-up via memoized walk.
  std::vector<std::size_t> len(rules.size(), 0);
  std::vector<char> done(rules.size(), 0);
  auto compute_len = [&](auto&& self, std::size_t id) -> std::size_t {
    if (done[id]) return len[id];
    std::size_t total = 0;
    for (std::int64_t v : rules[id].rhs) {
      total += (v >= 0) ? 1 : self(self, static_cast<std::size_t>(-v - 1));
    }
    done[id] = 1;
    len[id] = total;
    return total;
  };
  for (std::size_t i = 0; i < rules.size(); ++i) compute_len(compute_len, i);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    rules[i].expanded_length = len[i];
  }

  // Occurrence spans: walk S fully; every non-terminal instance met at
  // terminal position p spans [p, p + len - 1].
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
  std::size_t pos = 0;
  while (!stack.empty()) {
    auto& [rid, idx] = stack.back();
    const auto& rhs = rules[rid].rhs;
    if (idx >= rhs.size()) {
      stack.pop_back();
      continue;
    }
    const std::int64_t v = rhs[idx++];
    if (v >= 0) {
      ++pos;
    } else {
      const auto child = static_cast<std::size_t>(-v - 1);
      rules[child].occurrences.push_back(
          RuleOccurrence{pos, pos + len[child] - 1});
      stack.emplace_back(child, 0);
    }
  }

  const std::size_t seq_len = tokens.size();

  // Reclaim the live symbol graph. Symbols are neutralized before delete
  // so their destructors skip digram/use-count side effects.
  // Walk each body by pointer identity against its own guard —
  // IsGuard() would dereference other (possibly already freed) rules.
  const std::vector<Rule*> live(ctx.live_rules.begin(),
                                ctx.live_rules.end());
  for (Rule* r : live) {
    Sym* s = r->guard->next;
    while (s != r->guard) {
      Sym* nx = s->next;
      s->value = 0;
      s->prev = nullptr;
      s->next = nullptr;
      delete s;
      s = nx;
    }
    r->guard->value = 0;  // Neutralize the guard's back-reference too.
    r->guard->next = r->guard;
    r->guard->prev = r->guard;
    delete r;
  }
  return Grammar(std::move(rules), seq_len);
}

}  // namespace rpm::grammar
