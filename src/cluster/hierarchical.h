// Complete-linkage agglomerative clustering plus the paper's iterative
// two-way splitting refinement (Section 3.2.2, Algorithm 1 lines 10-17):
// a motif's occurrence set is repeatedly split in two; a split is accepted
// only when both halves hold at least `min_fraction` of the parent, and
// splitting recurses until no group can be split further.
//
// The agglomeration runs on the Lance-Williams complete-linkage
// recurrence d(a∪b, k) = max(d(a,k), d(b,k)) over one distance matrix
// computed up front, with cached row minima so each merge costs O(n)
// amortized instead of the naive O(n^2) linkage re-derivation.
// IterativeSplit computes the pairwise matrix once for the whole
// occurrence set and *slices* it as the recursion descends, so no
// Euclidean distance is ever computed twice; the 30 %-imbalance rule and
// the homogeneity (diameter) check read the same matrix. Because
// complete linkage only takes maxima of the original entries — never new
// floating-point arithmetic — merge trees and assignments are
// bit-identical to the naive path (asserted by cluster_linkage_test).

#ifndef RPM_CLUSTER_HIERARCHICAL_H_
#define RPM_CLUSTER_HIERARCHICAL_H_

#include <cstddef>
#include <vector>

#include "ts/series.h"

namespace rpm::cluster {

/// Pairwise Euclidean distance matrix of equal-length items, row-major,
/// d(i,j) at [i * n + j]. With `num_threads > 1` rows are filled on the
/// persistent thread pool; every (i, j) slot is written exactly once, so
/// the result is identical for any thread count.
std::vector<double> PairwiseDistanceMatrix(
    const std::vector<ts::Series>& items, std::size_t num_threads = 1);

/// One agglomeration step: the clusters occupying dendrogram slots
/// `a < b` were merged (b into a) at complete-linkage height `height`.
/// Slot ids are the indices of the items that founded each cluster.
struct Merge {
  std::size_t a = 0;
  std::size_t b = 0;
  double height = 0.0;

  bool operator==(const Merge&) const = default;
};

/// Merge sequence plus the final assignment (cluster id in [0, k) per
/// item; ids are dense, ordered by the surviving slots' founding index).
struct AgglomerationResult {
  std::vector<Merge> merges;
  std::vector<int> assignment;
};

/// Complete-linkage agglomeration down to `k` clusters over a
/// caller-provided `n x n` distance matrix (row-major, symmetric; the
/// diagonal is ignored). The matrix is consumed as Lance-Williams
/// scratch space. Ties break exactly like the naive pairwise scan:
/// smallest first slot, then smallest second slot.
AgglomerationResult CompleteLinkageAgglomerate(std::vector<double>& dist,
                                               std::size_t n, std::size_t k);

/// Cuts a complete-linkage dendrogram over `items` into `k` clusters.
/// Returns a cluster id in [0, k) per item (ids are dense but arbitrary).
/// Items must share one length; k is clamped to [1, n].
std::vector<int> CompleteLinkageCut(const std::vector<ts::Series>& items,
                                    std::size_t k);

/// Reference implementation: the textbook O(n^3) re-agglomeration that
/// recomputes every cluster-pair linkage from member distances on each
/// step. Kept as the golden oracle for equivalence tests and the
/// clustering micro-benchmarks; production code paths use
/// CompleteLinkageCut / CompleteLinkageAgglomerate.
std::vector<int> CompleteLinkageCutNaive(const std::vector<ts::Series>& items,
                                         std::size_t k);

/// Max pairwise distance (cluster diameter) within `group`, read from a
/// precomputed `n x n` matrix instead of re-deriving Euclidean distances.
double MaxIntraDistance(const std::vector<double>& dist, std::size_t n,
                        const std::vector<std::size_t>& group);

/// Controls the iterative splitting refinement.
struct SplitOptions {
  /// A 2-way split is rejected when either side holds fewer than this
  /// fraction of the parent group (the paper's 30 % rule).
  double min_fraction = 0.3;
  /// Groups smaller than this are never split.
  std::size_t min_size_to_split = 4;
  /// A split is accepted only if the larger child diameter (max pairwise
  /// distance) drops below this fraction of the parent's diameter —
  /// otherwise the group is considered homogeneous and kept whole. This
  /// realizes the paper's intent of splitting only motifs that "contain
  /// more than one group of similar patterns".
  double max_child_diameter_fraction = 0.7;
  /// Threads for the up-front pairwise matrix; the refinement result is
  /// identical for any value.
  std::size_t num_threads = 1;
};

/// Iteratively splits `items` per the paper's rule. Returns groups as
/// index lists into `items`; the union of groups is always the full index
/// set (no item is dropped here — frequency filtering happens later).
/// The pairwise matrix is computed once and sliced through the recursion.
std::vector<std::vector<std::size_t>> IterativeSplit(
    const std::vector<ts::Series>& items, const SplitOptions& options = {});

/// IterativeSplit plus the pairwise matrix it computed, so downstream
/// consumers (within-cluster distance pooling, medoid selection) reuse
/// the same distances instead of re-deriving them.
struct SplitResult {
  std::vector<std::vector<std::size_t>> groups;
  /// Row-major `items.size() x items.size()` Euclidean matrix.
  std::vector<double> matrix;
};
SplitResult IterativeSplitWithMatrix(const std::vector<ts::Series>& items,
                                     const SplitOptions& options = {});

/// Pointwise mean of equal-length members (empty input -> empty series).
ts::Series Centroid(const std::vector<ts::Series>& members);

/// Index of the member minimizing the sum of distances to the others.
/// Returns 0 for a single member; undefined (0) for empty input.
std::size_t MedoidIndex(const std::vector<ts::Series>& members);

/// MedoidIndex over a precomputed `n x n` distance matrix.
std::size_t MedoidIndexFromMatrix(const std::vector<double>& dist,
                                  std::size_t n);

}  // namespace rpm::cluster

#endif  // RPM_CLUSTER_HIERARCHICAL_H_
