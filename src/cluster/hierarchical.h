// Complete-linkage agglomerative clustering plus the paper's iterative
// two-way splitting refinement (Section 3.2.2, Algorithm 1 lines 10-17):
// a motif's occurrence set is repeatedly split in two; a split is accepted
// only when both halves hold at least `min_fraction` of the parent, and
// splitting recurses until no group can be split further.

#ifndef RPM_CLUSTER_HIERARCHICAL_H_
#define RPM_CLUSTER_HIERARCHICAL_H_

#include <cstddef>
#include <vector>

#include "ts/series.h"

namespace rpm::cluster {

/// Pairwise Euclidean distance matrix of equal-length items, row-major,
/// d(i,j) at [i * n + j].
std::vector<double> PairwiseDistanceMatrix(
    const std::vector<ts::Series>& items);

/// Cuts a complete-linkage dendrogram over `items` into `k` clusters.
/// Returns a cluster id in [0, k) per item (ids are dense but arbitrary).
/// Items must share one length; k is clamped to [1, n].
std::vector<int> CompleteLinkageCut(const std::vector<ts::Series>& items,
                                    std::size_t k);

/// Controls the iterative splitting refinement.
struct SplitOptions {
  /// A 2-way split is rejected when either side holds fewer than this
  /// fraction of the parent group (the paper's 30 % rule).
  double min_fraction = 0.3;
  /// Groups smaller than this are never split.
  std::size_t min_size_to_split = 4;
  /// A split is accepted only if the larger child diameter (max pairwise
  /// distance) drops below this fraction of the parent's diameter —
  /// otherwise the group is considered homogeneous and kept whole. This
  /// realizes the paper's intent of splitting only motifs that "contain
  /// more than one group of similar patterns".
  double max_child_diameter_fraction = 0.7;
};

/// Iteratively splits `items` per the paper's rule. Returns groups as
/// index lists into `items`; the union of groups is always the full index
/// set (no item is dropped here — frequency filtering happens later).
std::vector<std::vector<std::size_t>> IterativeSplit(
    const std::vector<ts::Series>& items, const SplitOptions& options = {});

/// Pointwise mean of equal-length members (empty input -> empty series).
ts::Series Centroid(const std::vector<ts::Series>& members);

/// Index of the member minimizing the sum of distances to the others.
/// Returns 0 for a single member; undefined (0) for empty input.
std::size_t MedoidIndex(const std::vector<ts::Series>& members);

}  // namespace rpm::cluster

#endif  // RPM_CLUSTER_HIERARCHICAL_H_
