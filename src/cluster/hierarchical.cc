#include "cluster/hierarchical.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "distance/euclidean.h"

namespace rpm::cluster {

std::vector<double> PairwiseDistanceMatrix(
    const std::vector<ts::Series>& items) {
  const std::size_t n = items.size();
  std::vector<double> d(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dist = distance::Euclidean(items[i], items[j]);
      d[i * n + j] = dist;
      d[j * n + i] = dist;
    }
  }
  return d;
}

std::vector<int> CompleteLinkageCut(const std::vector<ts::Series>& items,
                                    std::size_t k) {
  const std::size_t n = items.size();
  std::vector<int> assignment(n, 0);
  if (n == 0) return assignment;
  k = std::clamp<std::size_t>(k, 1, n);

  // Naive O(n^3) agglomeration over the complete-linkage distance, which
  // is ample for motif occurrence counts (tens to low hundreds).
  std::vector<double> dist = PairwiseDistanceMatrix(items);
  std::vector<std::vector<std::size_t>> clusters(n);
  for (std::size_t i = 0; i < n; ++i) clusters[i] = {i};
  // linkage[a][b] = max pairwise distance between clusters a and b.
  auto linkage = [&](const std::vector<std::size_t>& a,
                     const std::vector<std::size_t>& b) {
    double mx = 0.0;
    for (std::size_t i : a) {
      for (std::size_t j : b) mx = std::max(mx, dist[i * n + j]);
    }
    return mx;
  };

  while (clusters.size() > k) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0;
    std::size_t bj = 1;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        const double l = linkage(clusters[i], clusters[j]);
        if (l < best) {
          best = l;
          bi = i;
          bj = j;
        }
      }
    }
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bj));
  }

  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (std::size_t i : clusters[c]) assignment[i] = static_cast<int>(c);
  }
  return assignment;
}

namespace {

// Max pairwise distance within `group` (indices into items).
double Diameter(const std::vector<ts::Series>& items,
                const std::vector<std::size_t>& group) {
  double mx = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = i + 1; j < group.size(); ++j) {
      mx = std::max(mx, distance::Euclidean(items[group[i]],
                                            items[group[j]]));
    }
  }
  return mx;
}

// Recursive helper: try to split group `idx` (indices into items) in two.
void SplitRecursive(const std::vector<ts::Series>& items,
                    std::vector<std::size_t> group,
                    const SplitOptions& options,
                    std::vector<std::vector<std::size_t>>& out) {
  if (group.size() < options.min_size_to_split) {
    out.push_back(std::move(group));
    return;
  }
  std::vector<ts::Series> members;
  members.reserve(group.size());
  for (std::size_t i : group) members.push_back(items[i]);
  const std::vector<int> cut = CompleteLinkageCut(members, 2);

  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  for (std::size_t m = 0; m < group.size(); ++m) {
    (cut[m] == cut[0] ? left : right).push_back(group[m]);
  }
  const double frac = static_cast<double>(std::min(left.size(), right.size())) /
                      static_cast<double>(group.size());
  if (right.empty() || frac < options.min_fraction) {
    // Drastically unbalanced (or degenerate) split: keep the group whole.
    out.push_back(std::move(group));
    return;
  }
  // Homogeneity check: a split must actually tighten the clusters.
  const double parent_diameter = Diameter(items, group);
  const double child_diameter =
      std::max(Diameter(items, left), Diameter(items, right));
  if (parent_diameter <= 0.0 ||
      child_diameter >
          options.max_child_diameter_fraction * parent_diameter) {
    out.push_back(std::move(group));
    return;
  }
  SplitRecursive(items, std::move(left), options, out);
  SplitRecursive(items, std::move(right), options, out);
}

}  // namespace

std::vector<std::vector<std::size_t>> IterativeSplit(
    const std::vector<ts::Series>& items, const SplitOptions& options) {
  std::vector<std::vector<std::size_t>> out;
  if (items.empty()) return out;
  std::vector<std::size_t> all(items.size());
  std::iota(all.begin(), all.end(), 0);
  SplitRecursive(items, std::move(all), options, out);
  return out;
}

ts::Series Centroid(const std::vector<ts::Series>& members) {
  ts::Series out;
  if (members.empty()) return out;
  out.assign(members.front().size(), 0.0);
  for (const auto& m : members) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += m[i];
  }
  const double inv = 1.0 / static_cast<double>(members.size());
  for (double& v : out) v *= inv;
  return out;
}

std::size_t MedoidIndex(const std::vector<ts::Series>& members) {
  if (members.size() <= 1) return 0;
  const std::vector<double> dist = PairwiseDistanceMatrix(members);
  const std::size_t n = members.size();
  std::size_t best = 0;
  double best_sum = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += dist[i * n + j];
    if (sum < best_sum) {
      best_sum = sum;
      best = i;
    }
  }
  return best;
}

}  // namespace rpm::cluster
