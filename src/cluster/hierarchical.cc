#include "cluster/hierarchical.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "distance/euclidean.h"
#include "ts/parallel.h"

namespace rpm::cluster {

std::vector<double> PairwiseDistanceMatrix(
    const std::vector<ts::Series>& items, std::size_t num_threads) {
  const std::size_t n = items.size();
  std::vector<double> d(n * n, 0.0);
  // Row i owns every (i, j) pair with j > i and writes both symmetric
  // slots; no slot is written twice, so the parallel fill is race-free
  // and identical for any thread count.
  ts::ParallelFor(n, num_threads, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dist = distance::Euclidean(items[i], items[j]);
      d[i * n + j] = dist;
      d[j * n + i] = dist;
    }
  });
  return d;
}

AgglomerationResult CompleteLinkageAgglomerate(std::vector<double>& dist,
                                               std::size_t n, std::size_t k) {
  AgglomerationResult out;
  out.assignment.assign(n, 0);
  if (n == 0) return out;
  k = std::clamp<std::size_t>(k, 1, n);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<char> alive(n, 1);
  // Cached minimum of row i over alive j > i, and the smallest such j.
  // Scanning j ascending with a strict `<` reproduces the naive pairwise
  // scan's tie-breaking exactly.
  std::vector<double> row_min(n, kInf);
  std::vector<std::size_t> row_arg(n, n);
  auto recompute_row = [&](std::size_t i) {
    double mn = kInf;
    std::size_t arg = n;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (alive[j] == 0) continue;
      const double d = dist[i * n + j];
      if (d < mn) {
        mn = d;
        arg = j;
      }
    }
    row_min[i] = mn;
    row_arg[i] = arg;
  };
  for (std::size_t i = 0; i + 1 < n; ++i) recompute_row(i);

  std::size_t active = n;
  out.merges.reserve(n - k);
  while (active > k) {
    // Global minimum: smallest slot a achieving the minimum, then the
    // smallest partner b (already encoded in row_arg).
    double best = kInf;
    std::size_t a = n;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (alive[i] != 0 && row_min[i] < best) {
        best = row_min[i];
        a = i;
      }
    }
    const std::size_t b = row_arg[a];
    out.merges.push_back(Merge{a, b, best});

    // Lance-Williams complete-linkage update: d(a∪b, j) takes the max of
    // the two source rows — pure selection from existing entries, so the
    // dendrogram heights stay bit-identical to the naive recomputation.
    alive[b] = 0;
    --active;
    for (std::size_t j = 0; j < n; ++j) {
      if (alive[j] == 0 || j == a) continue;
      const double m = std::max(dist[a * n + j], dist[b * n + j]);
      dist[a * n + j] = m;
      dist[j * n + a] = m;
    }
    // Row minima: entries in row a changed, and any row whose cached
    // minimum pointed at a (grown) or b (gone) must rescan. Rows whose
    // argument is elsewhere are untouched — the max update can only
    // increase d(·, a), never undercut an existing minimum.
    recompute_row(a);
    for (std::size_t i = 0; i < a; ++i) {
      if (alive[i] != 0 && (row_arg[i] == a || row_arg[i] == b)) {
        recompute_row(i);
      }
    }
    for (std::size_t i = a + 1; i < b; ++i) {
      if (alive[i] != 0 && row_arg[i] == b) recompute_row(i);
    }
  }

  // Dense ids ordered by surviving slot (== the naive path's position
  // order, since merges always fold the later slot into the earlier one).
  std::vector<int> slot_to_id(n, -1);
  int next_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i] != 0) slot_to_id[i] = next_id++;
  }
  // Each item's slot: follow the merge chain. Rebuild membership by
  // replaying merges over a union of index lists.
  std::vector<std::size_t> owner(n);
  std::iota(owner.begin(), owner.end(), 0);
  // owner[i] must end at the surviving slot; replay is O(total moved).
  {
    std::vector<std::vector<std::size_t>> members(n);
    for (std::size_t i = 0; i < n; ++i) members[i] = {i};
    for (const Merge& m : out.merges) {
      for (std::size_t idx : members[m.b]) owner[idx] = m.a;
      members[m.a].insert(members[m.a].end(), members[m.b].begin(),
                          members[m.b].end());
      members[m.b].clear();
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.assignment[i] = slot_to_id[owner[i]];
  }
  return out;
}

std::vector<int> CompleteLinkageCut(const std::vector<ts::Series>& items,
                                    std::size_t k) {
  std::vector<double> dist = PairwiseDistanceMatrix(items);
  return CompleteLinkageAgglomerate(dist, items.size(), k).assignment;
}

std::vector<int> CompleteLinkageCutNaive(const std::vector<ts::Series>& items,
                                         std::size_t k) {
  const std::size_t n = items.size();
  std::vector<int> assignment(n, 0);
  if (n == 0) return assignment;
  k = std::clamp<std::size_t>(k, 1, n);

  // Textbook O(n^3) agglomeration: every step recomputes every
  // cluster-pair linkage from member distances.
  std::vector<double> dist = PairwiseDistanceMatrix(items);
  std::vector<std::vector<std::size_t>> clusters(n);
  for (std::size_t i = 0; i < n; ++i) clusters[i] = {i};
  // linkage[a][b] = max pairwise distance between clusters a and b.
  auto linkage = [&](const std::vector<std::size_t>& a,
                     const std::vector<std::size_t>& b) {
    double mx = 0.0;
    for (std::size_t i : a) {
      for (std::size_t j : b) mx = std::max(mx, dist[i * n + j]);
    }
    return mx;
  };

  while (clusters.size() > k) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0;
    std::size_t bj = 1;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        const double l = linkage(clusters[i], clusters[j]);
        if (l < best) {
          best = l;
          bi = i;
          bj = j;
        }
      }
    }
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bj));
  }

  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (std::size_t i : clusters[c]) assignment[i] = static_cast<int>(c);
  }
  return assignment;
}

double MaxIntraDistance(const std::vector<double>& dist, std::size_t n,
                        const std::vector<std::size_t>& group) {
  double mx = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = i + 1; j < group.size(); ++j) {
      mx = std::max(mx, dist[group[i] * n + group[j]]);
    }
  }
  return mx;
}

namespace {

// Recursive helper: try to split group `idx` (indices into items) in two.
// `dist` is the pairwise matrix over ALL items — subgroups slice it
// instead of recomputing any distance.
void SplitRecursive(const std::vector<double>& dist, std::size_t n,
                    std::vector<std::size_t> group,
                    const SplitOptions& options,
                    std::vector<std::vector<std::size_t>>& out) {
  if (group.size() < options.min_size_to_split) {
    out.push_back(std::move(group));
    return;
  }
  // Slice the parent matrix down to the group: the entries are the very
  // Euclidean values the old path recomputed from scratch per recursion.
  const std::size_t g = group.size();
  std::vector<double> sub(g * g);
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      sub[i * g + j] = dist[group[i] * n + group[j]];
    }
  }
  const std::vector<int> cut =
      CompleteLinkageAgglomerate(sub, g, 2).assignment;

  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  for (std::size_t m = 0; m < group.size(); ++m) {
    (cut[m] == cut[0] ? left : right).push_back(group[m]);
  }
  const double frac = static_cast<double>(std::min(left.size(), right.size())) /
                      static_cast<double>(group.size());
  if (right.empty() || frac < options.min_fraction) {
    // Drastically unbalanced (or degenerate) split: keep the group whole.
    out.push_back(std::move(group));
    return;
  }
  // Homogeneity check: a split must actually tighten the clusters. All
  // three diameters are maxima over entries of the shared matrix.
  const double parent_diameter = MaxIntraDistance(dist, n, group);
  const double child_diameter =
      std::max(MaxIntraDistance(dist, n, left),
               MaxIntraDistance(dist, n, right));
  if (parent_diameter <= 0.0 ||
      child_diameter >
          options.max_child_diameter_fraction * parent_diameter) {
    out.push_back(std::move(group));
    return;
  }
  SplitRecursive(dist, n, std::move(left), options, out);
  SplitRecursive(dist, n, std::move(right), options, out);
}

}  // namespace

SplitResult IterativeSplitWithMatrix(const std::vector<ts::Series>& items,
                                     const SplitOptions& options) {
  SplitResult out;
  if (items.empty()) return out;
  out.matrix = PairwiseDistanceMatrix(items, options.num_threads);
  std::vector<std::size_t> all(items.size());
  std::iota(all.begin(), all.end(), 0);
  SplitRecursive(out.matrix, items.size(), std::move(all), options,
                 out.groups);
  return out;
}

std::vector<std::vector<std::size_t>> IterativeSplit(
    const std::vector<ts::Series>& items, const SplitOptions& options) {
  return IterativeSplitWithMatrix(items, options).groups;
}

ts::Series Centroid(const std::vector<ts::Series>& members) {
  ts::Series out;
  if (members.empty()) return out;
  out.assign(members.front().size(), 0.0);
  for (const auto& m : members) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += m[i];
  }
  const double inv = 1.0 / static_cast<double>(members.size());
  for (double& v : out) v *= inv;
  return out;
}

std::size_t MedoidIndexFromMatrix(const std::vector<double>& dist,
                                  std::size_t n) {
  if (n <= 1) return 0;
  std::size_t best = 0;
  double best_sum = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += dist[i * n + j];
    if (sum < best_sum) {
      best_sum = sum;
      best = i;
    }
  }
  return best;
}

std::size_t MedoidIndex(const std::vector<ts::Series>& members) {
  if (members.size() <= 1) return 0;
  const std::vector<double> dist = PairwiseDistanceMatrix(members);
  return MedoidIndexFromMatrix(dist, members.size());
}

}  // namespace rpm::cluster
