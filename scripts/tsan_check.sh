#!/usr/bin/env bash
# Builds the thread-sanitized configuration and runs the concurrency
# surface: the thread-pool/matcher tests, the cross-thread determinism
# tests, the training-path equivalence suites (clustering, DTW cascade,
# training cache — everything carrying the `training` ctest label), the
# serving-layer suites (registry hot reload, batching queue, server
# hammering, connection framing), and the streaming suites (session
# manager under concurrent feeds, eviction racing feeds, shutdown racing
# feeds — everything carrying the `stream` ctest label), the
# observability suites (8-thread registry/tracer hammer — the `obs`
# label), and the network front-end suites (reactor threads, async
# response re-sequencing, graceful stop racing live connections — the
# `net` label), and the fixed-seed fuzz schedules driving all of the
# above at once (the `fuzz` label), and the dataset/format suites
# (`dataset` label: concurrent mmap readers racing the lazy per-chunk
# CRC flags, and the sharded TrainingCache behind archive-scale
# training). Any data race in the pool, the parallel transform paths,
# the training cache shards, the serve path, the stream session manager,
# the metric/trace cells, or the shard reactors fails the script.
#
# Usage: scripts/tsan_check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DRPM_SANITIZE=thread \
  -DRPM_BUILD_BENCHMARKS=OFF \
  -DRPM_BUILD_EXAMPLES=OFF
# Build everything registered with ctest: partially built trees leave
# NOT_BUILT placeholder tests that fail the run.
cmake --build "${build_dir}" -j

# halt_on_error makes ctest report races as hard failures.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
ctest --test-dir "${build_dir}" --output-on-failure \
  -R 'ThreadPool|ParallelFor|ParallelDeterminism|BatchedBestMatch|BatchMatcher|SeriesContext|ModelRegistry|BatchingQueue|InferenceServer|ServeConcurrency|LineAssembler'

# Training-path suites (cluster_linkage, dtw_cascade, training_cache):
# includes the concurrent TrainingCache lookups and the pool-shared
# iterative-split tests.
ctest --test-dir "${build_dir}" --output-on-failure -L training

# Streaming suites: 8 sessions fed from 8 threads while models hot-reload
# and the evictor runs, plus Shutdown racing active feeds.
ctest --test-dir "${build_dir}" --output-on-failure -L stream

# Observability suites: 8 threads hammering one registry's counter,
# gauge, and histogram cells plus one tracer's rings while snapshots and
# flushes race the writers.
ctest --test-dir "${build_dir}" --output-on-failure -L obs

# Network front-end suites: shard reactor threads accepting and serving
# concurrent connections, dispatcher-thread CLASSIFY responses posted
# back across threads and re-sequenced, and Stop() racing in-flight I/O.
ctest --test-dir "${build_dir}" --output-on-failure -L net

# Fuzzing suites: the fixed-seed protocol sweeps drive a live sharded
# front end (reactor threads + dispatcher threads + the harness's poll
# loop) through fault-injection schedules — split writes, abrupt
# disconnects, shutdown racing pipelined streams — so any race those
# interleavings expose fails here.
ctest --test-dir "${build_dir}" --output-on-failure -L fuzz

# Dataset/format suites: pool workers hammering one mmap reader's
# values() — racing the lazy per-chunk CRC verification flags — and the
# sharded TrainingCache under concurrent split evaluations.
ctest --test-dir "${build_dir}" --output-on-failure -L dataset

echo "TSan check passed."

# ASan+UBSan pass over the matcher suites (`matcher` ctest label: the
# batched-scan equivalence tests and the SoA pattern-store cross-tier
# golden sweep — including the seeded/any-below golden suites) and the
# training-path suites (`training` label: clustering, DTW cascade,
# training cache, distinct selection — the consumers now routed through
# the store's seeded scans). The slab kernels read zero-padded 64-byte
# rows and the across-window dot loops issue unaligned vector loads
# right up to the last window — ASan catches any read past the arena or
# the series buffer, UBSan any misaligned-pointer or overflow slip in
# the bucket index arithmetic. TSan cannot see either, hence the
# separate build.
asan_build_dir="${2:-${repo_root}/build-asan}"
cmake -S "${repo_root}" -B "${asan_build_dir}" \
  -DRPM_SANITIZE=address,undefined \
  -DRPM_BUILD_BENCHMARKS=OFF \
  -DRPM_BUILD_EXAMPLES=OFF
cmake --build "${asan_build_dir}" -j

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=0 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
ctest --test-dir "${asan_build_dir}" --output-on-failure -L matcher
ctest --test-dir "${asan_build_dir}" --output-on-failure -L training

# The fuzz suites run here too: the bounded protocol sweep and the
# model-mutation sweep feed adversarial bytes into the frame/line
# assemblers and the model loaders, where heap overreads and integer
# overflows (count bombs) are exactly what ASan/UBSan see and TSan
# cannot.
ctest --test-dir "${asan_build_dir}" --output-on-failure -L fuzz

# The dataset suites run here too: the byte-flip and truncation sweeps
# hand the mmap parser adversarial headers, directories, and length
# tables, where out-of-bounds offsets and count bombs are what
# ASan/UBSan see; the round-trip suites walk every zero-copy view right
# up to the mapping's edge.
ctest --test-dir "${asan_build_dir}" --output-on-failure -L dataset

echo "ASan+UBSan matcher+training+fuzz+dataset check passed."
