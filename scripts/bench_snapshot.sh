#!/usr/bin/env bash
# Records a benchmark snapshot at the repo root:
#   BENCH_kernels.json        micro_kernels --json  (matcher + DTW-cascade
#                             kernel timings with exactness checksums; the
#                             matcher rows cover the naive per-call scan,
#                             the per-pattern batched scan, and the
#                             SoA pattern-store scan — the latter also as
#                             one best_match_soa_<tier> row per available
#                             ISA tier (scalar / avx2 / avx512, forced via
#                             the RPM_FORCE_ISA override) plus a
#                             soa_buckets array with per-length-bucket
#                             ns/op, and match_all_seeded / any_below
#                             rows (the cutoff-seeded scan and the
#                             first-hit existence sweep behind the
#                             training hot loops, each also per forced
#                             tier). checksum_drift and
#                             train_kernel_checksum_drift compare the
#                             forced tiers' checksums and the run aborts
#                             unless both are exactly zero)
#   BENCH_table2.json         table2_runtime --json (suite sweep:
#                             per-dataset LS/FS/RPM totals, per-method
#                             train sums, and a train_phases object with
#                             the --profile per-phase rpm/fs/st wall
#                             times)
#   BENCH_stream.json         stream_bench          (streaming scorer:
#                             samples/sec/session + decision p50/p95,
#                             single and 8 concurrent sessions, plus a
#                             shard sweep — 1/2/4/8 server shards, one
#                             pinned session each, per-shard rows and
#                             aggregate samples/s with a bit-identical
#                             decision check against the replay path)
#   BENCH_serve.json          serve_bench           (per-request vs
#                             batched serving throughput + latency)
#   BENCH_serve_metrics.json  serve_bench           (end-of-run METRICS
#                             scrape: Prometheus text, STATS JSON, and
#                             recent trace spans — the observability
#                             view of the same run)
#   BENCH_scaling.json        scaling_bench --json  (archive-scale sweep,
#                             docs/DATASETS.md: CBF archives of 20k..1M
#                             series streamed to RPMD files and trained
#                             through the mmap DatasetReader under a
#                             stratified 200/class training cap and
#                             50/class sampled candidate discovery; one
#                             row per size with generation / open /
#                             train wall times, the per-phase
#                             TrainingReport split, and process peak
#                             RSS. With the caps binding, mine_seconds
#                             must stay flat and peak_rss_mb bounded
#                             while num_series grows 50x — the archive
#                             files themselves are deleted after each
#                             row. RPM_BENCH_SCALING_MAX caps the sweep
#                             (default 1000000) for quick runs.)
#
# Usage: scripts/bench_snapshot.sh [build-dir]   (default: build)
#
# The sweep honours RPM_BENCH_SCALE / RPM_BENCH_CACHE (see
# bench/harness.h). By default the cache file lives at the repo root, so
# re-running the script after a code change without clearing
# .rpm_bench_results_cache.csv re-reports the cached sweep; pass
# RPM_BENCH_CACHE=off for a guaranteed fresh measurement.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

if [[ ! -x "${build_dir}/bench/micro_kernels" ||
      ! -x "${build_dir}/bench/table2_runtime" ||
      ! -x "${build_dir}/bench/stream_bench" ||
      ! -x "${build_dir}/bench/serve_bench" ||
      ! -x "${build_dir}/bench/scaling_bench" ]]; then
  echo "bench binaries missing under ${build_dir}/bench;" \
       "configure with -DRPM_BUILD_BENCHMARKS=ON and build first" >&2
  exit 1
fi

cd "${repo_root}"
"${build_dir}/bench/micro_kernels" --json
"${build_dir}/bench/table2_runtime" --json
"${build_dir}/bench/stream_bench"
"${build_dir}/bench/serve_bench"

# Archive files are written to (and removed from) a scratch dir so a
# killed run never leaves gigabyte .rpmd files at the repo root.
scaling_work="$(mktemp -d)"
trap 'rm -rf "${scaling_work}"' EXIT
"${build_dir}/bench/scaling_bench" --json \
    --max "${RPM_BENCH_SCALING_MAX:-1000000}" --workdir "${scaling_work}"

echo "snapshot written: ${repo_root}/BENCH_kernels.json," \
     "${repo_root}/BENCH_table2.json, ${repo_root}/BENCH_stream.json," \
     "${repo_root}/BENCH_serve.json, ${repo_root}/BENCH_serve_metrics.json," \
     "${repo_root}/BENCH_scaling.json"
