#!/usr/bin/env bash
# Open-ended fuzzing soak: runs the rpm_fuzz CLI in repeated batches
# until the time budget is spent, advancing the seed monotonically so
# every batch covers fresh schedules. Intended for long sanitizer runs
# (point it at an ASan/UBSan build dir) and overnight soaks; the ctest
# `fuzz` label covers the bounded fixed-seed sweep instead.
#
# Each batch interleaves protocol schedules (live front end + fault
# injection) and model-file mutations. On the first failure the CLI
# prints the failing seed plus a minimized repro command; this script
# stops there and exits 1 so the seed can be checked into
# tests/fuzz_corpus/ once the bug is fixed.
#
# Usage: scripts/fuzz_soak.sh --minutes N [--build-dir DIR] [--seed S]
#   --minutes N     time budget (default 10)
#   --build-dir DIR build tree containing examples/rpm_fuzz (default: build)
#   --seed S        base seed (default: derived from the clock, printed
#                   so any failure is reproducible)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
minutes=10
build_dir="${repo_root}/build"
base_seed=""

while [ $# -gt 0 ]; do
  case "$1" in
    --minutes)   minutes="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --seed)      base_seed="$2"; shift 2 ;;
    *) echo "fuzz_soak: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

fuzz_bin="${build_dir}/examples/rpm_fuzz"
if [ ! -x "${fuzz_bin}" ]; then
  echo "fuzz_soak: ${fuzz_bin} not found; build with -DRPM_BUILD_EXAMPLES=ON" >&2
  exit 2
fi

if [ -z "${base_seed}" ]; then
  base_seed=$(date +%s)
fi
deadline=$(( $(date +%s) + minutes * 60 ))

# The base seed is the whole reproduction story: record it up front so a
# crash mid-soak still tells us where the run started.
echo "fuzz_soak: base seed ${base_seed}, budget ${minutes}m, binary ${fuzz_bin}"

batch=0
seed=${base_seed}
while [ "$(date +%s)" -lt "${deadline}" ]; do
  batch=$((batch + 1))
  echo "fuzz_soak: batch ${batch} (protocol seed ${seed}, model seed ${seed})"
  if ! "${fuzz_bin}" --mode protocol --seed "${seed}" --iters 200; then
    echo "fuzz_soak: PROTOCOL FAILURE in batch ${batch} (base seed ${base_seed})"
    exit 1
  fi
  if ! "${fuzz_bin}" --mode model --seed "${seed}" --iters 2000; then
    echo "fuzz_soak: MODEL FAILURE in batch ${batch} (base seed ${base_seed})"
    exit 1
  fi
  seed=$((seed + 10000))
done

echo "fuzz_soak: clean after ${batch} batches (base seed ${base_seed})"
