#!/usr/bin/env bash
# Documentation lint, run by ctest as the `docs` label (see
# tests/CMakeLists.txt). Two cross-checks keep the docs honest:
#
#  1. Every protocol verb handled in src/serve/server.cc appears in
#     docs/SERVING.md, and so does every binary-protocol verb listed in
#     the wire table (kVerbTable in src/net/frame.cc) together with its
#     wire byte.
#  2. Every metric family registered in the sources (rpm_*_total,
#     rpm_*_microseconds, gauges, ...) appears in docs/OBSERVABILITY.md,
#     and so does every trace span name recorded via TraceSpan /
#     MaybeRecord.
#
# A third class of check keeps the fuzz harness honest rather than the
# docs: every verb in the wire table must have a production in the fuzz
# grammar (section 4), so protocol growth can't silently escape fuzzing.
#
# Run from the repo root (ctest sets WORKING_DIRECTORY accordingly):
#   scripts/docs_lint.sh

set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. protocol verbs ------------------------------------------------
verbs=$(grep -oE 'cmd == "[A-Z_]+"' src/serve/server.cc |
        grep -oE '"[A-Z_]+"' | tr -d '"' | sort -u)
if [ -z "$verbs" ]; then
  echo "docs_lint: found no verbs in src/serve/server.cc (pattern drift?)"
  fail=1
fi
for verb in $verbs; do
  if ! grep -q "\b${verb}\b" docs/SERVING.md; then
    echo "docs_lint: verb ${verb} (src/serve/server.cc) missing from docs/SERVING.md"
    fail=1
  fi
done

# --- 1b. binary-protocol verb table ----------------------------------
# kVerbTable pins the verb names; frame.h pins the wire bytes. Both must
# appear in the SERVING.md binary-protocol section: the name anywhere,
# and the byte as the 0xNN literal from the BinaryVerb enum.
bin_verbs=$(grep -oE '\{BinaryVerb::k[A-Za-z]+, "[A-Z_]+"\}' src/net/frame.cc |
            grep -oE '"[A-Z_]+"' | tr -d '"' | sort -u)
if [ -z "$bin_verbs" ]; then
  echo "docs_lint: found no binary verbs in src/net/frame.cc (pattern drift?)"
  fail=1
fi
for verb in $bin_verbs; do
  if ! grep -q "\b${verb}\b" docs/SERVING.md; then
    echo "docs_lint: binary verb ${verb} (src/net/frame.cc) missing from docs/SERVING.md"
    fail=1
  fi
done
bin_bytes=$(grep -oE '= 0x[0-9A-F]+,' src/net/frame.h | grep -oE '0x[0-9A-F]+' | sort -u)
for byte in $bin_bytes; do
  if ! grep -q "${byte}" docs/SERVING.md; then
    echo "docs_lint: binary verb byte ${byte} (src/net/frame.h) missing from docs/SERVING.md"
    fail=1
  fi
done

# --- 2. metric families ----------------------------------------------
metrics=$(grep -rhoE '"rpm_(serve|stream|matcher|net)_[a-z_]+"' src |
          tr -d '"' | sort -u)
if [ -z "$metrics" ]; then
  echo "docs_lint: found no metric names under src/ (pattern drift?)"
  fail=1
fi
for metric in $metrics; do
  if ! grep -q "${metric}" docs/OBSERVABILITY.md; then
    echo "docs_lint: metric ${metric} missing from docs/OBSERVABILITY.md"
    fail=1
  fi
done

# --- 3. PatternStore public surface -----------------------------------
# Every public method of the SoA pattern store must be covered by the
# training-path performance notes (docs/PERF.md). Extracted from the
# public section of the header, skipping comment lines and nested-type
# names; the constructor matches the class name, which PERF.md names
# anyway.
ps_methods=$(awk '/public:/{pub=1} /private:/{pub=0}
                  pub && $1 !~ /^\/\//' src/distance/pattern_store.h |
             grep -oE '(^|[ ~*&])[A-Za-z_][A-Za-z0-9_]*\(' |
             grep -oE '[A-Za-z_][A-Za-z0-9_]*' | sort -u |
             grep -vE '^(BucketInfo|if|for|while|return|sizeof)$')
if [ -z "$ps_methods" ]; then
  echo "docs_lint: found no public methods in src/distance/pattern_store.h (pattern drift?)"
  fail=1
fi
for m in $ps_methods; do
  if ! grep -q "\b${m}\b" docs/PERF.md; then
    echo "docs_lint: PatternStore public method ${m} (src/distance/pattern_store.h) missing from docs/PERF.md"
    fail=1
  fi
done

# --- 4. fuzz grammar verb coverage ------------------------------------
# The fuzz grammar (src/fuzz/grammar.cc) must generate every verb in the
# wire table: a verb added to kVerbTable without a matching production
# silently shrinks fuzz coverage, so make the gap loud here.
if [ -z "$bin_verbs" ]; then
  echo "docs_lint: no binary verbs to check against the fuzz grammar (pattern drift?)"
  fail=1
fi
grammar_src=src/fuzz/grammar.cc
if ! grep -q '"CLASSIFY"' "$grammar_src"; then
  echo "docs_lint: ${grammar_src} lost its verb literals (pattern drift?)"
  fail=1
fi
for verb in $bin_verbs; do
  if ! grep -q "\"${verb}\"" "$grammar_src"; then
    echo "docs_lint: verb ${verb} (src/net/frame.cc kVerbTable) has no production in ${grammar_src}"
    fail=1
  fi
done

# --- 5. span names ----------------------------------------------------
spans=$(
  {
    grep -rhoE 'TraceSpan [a-z_]+\("[a-z_.]+"' src |
      grep -oE '"[a-z_.]+"'
    grep -rhoE 'MaybeRecord\("[a-z_.]+"' src |
      grep -oE '"[a-z_.]+"'
    # Phase spans are table-driven (core/phase_profile.cc).
    grep -rhoE '"train\.[a-z_]+"' src/core/phase_profile.cc
  } | tr -d '"' | sort -u
)
for span in $spans; do
  if ! grep -q "${span}" docs/OBSERVABILITY.md; then
    echo "docs_lint: span ${span} missing from docs/OBSERVABILITY.md"
    fail=1
  fi
done

# --- 6. dataset I/O public surface ------------------------------------
# Every public symbol of the binary dataset layer must be covered by the
# format spec (docs/DATASETS.md): free functions, both classes, and
# every public method. Extraction starts in "public" state (free
# functions and struct members), turns off at private: sections, and
# back on when a class body closes at column 0.
ds_header=src/ts/dataset_io.h
ds_symbols=$(awk 'BEGIN{pub=1} /private:/{pub=0} /public:/{pub=1}
                  /^};/{pub=1} pub && $1 !~ /^\/\//' "$ds_header" |
             grep -oE '(^|[ ~*&])[A-Za-z_][A-Za-z0-9_]*\(' |
             grep -oE '[A-Za-z_][A-Za-z0-9_]*' | sort -u |
             grep -vE '^(if|for|while|return|sizeof|defined)$')
ds_classes="DatasetFormatError DatasetWriterOptions DatasetWriter DatasetReaderOptions DatasetReader"
if [ -z "$ds_symbols" ] || ! echo "$ds_symbols" | grep -q 'Crc32'; then
  echo "docs_lint: found no public symbols in ${ds_header} (pattern drift?)"
  fail=1
fi
for sym in $ds_symbols $ds_classes; do
  if ! grep -q "\b${sym}\b" docs/DATASETS.md; then
    echo "docs_lint: dataset symbol ${sym} (${ds_header}) missing from docs/DATASETS.md"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docs_lint: FAILED"
  exit 1
fi
echo "docs_lint: OK ($(echo "$verbs" | wc -w | tr -d ' ') verbs, $(echo "$bin_verbs" | wc -w | tr -d ' ') binary verbs, $(echo "$metrics" | wc -w | tr -d ' ') metrics, $(echo "$spans" | wc -w | tr -d ' ') spans)"
